"""Benchmark registry: the ``@benchmark`` decorator and its bookkeeping.

A benchmark is a named callable ``fn(ctx) -> BenchResult`` registered under
a group ("figures", "ablations", "substrate", "serving").  The registry is
what both front ends share: the pytest wrappers in ``benchmarks/`` time the
same callables that ``python -m repro.bench run`` turns into JSON artifacts,
so a perf number seen in CI is the perf number a developer reproduces
locally with pytest.

Specs carry everything the runner and the compare gate need per benchmark:
timing protocol (rounds/warmup), per-metric tolerance bands, and an
optional shape-check that asserts the paper's qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConfigurationError
from repro.experiments.common import Scale

#: Scale-tier names, in increasing-cost order.  The single source of truth
#: for every front end (CLI ``--scale``, ``REPRO_BENCH_SCALE``, conftest).
TIERS = ("tiny", "small", "full")


@dataclass(frozen=True)
class Tolerance:
    """A per-metric acceptance band for the regression gate.

    A run value ``v`` passes against a baseline value ``b`` when
    ``|v - b| <= abs + rel * |b|``.
    """

    rel: float = 0.0
    abs: float = 0.0

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs < 0:
            raise ConfigurationError("tolerance bands must be non-negative")

    def accepts(self, value: float, baseline: float) -> bool:
        return abs(value - baseline) <= self.abs + self.rel * abs(baseline)

    def describe(self) -> str:
        parts = []
        if self.rel:
            parts.append(f"±{self.rel * 100:g}%")
        if self.abs:
            parts.append(f"±{self.abs:g} abs")
        return " + ".join(parts) if parts else "exact"


#: Band applied to any metric a spec does not configure explicitly.  Wide
#: enough to absorb BLAS/platform floating-point drift at tiny scale, tight
#: enough to catch a genuinely broken cascade.
DEFAULT_TOLERANCE = Tolerance(rel=0.25, abs=1e-9)


@dataclass(frozen=True)
class BenchContext:
    """Everything a benchmark body receives: the tier and its knobs."""

    tier: str
    scale: Scale
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchResult:
    """What a benchmark body returns.

    ``metrics`` feeds the JSON artifact and the compare gate; ``units`` (how
    many items one call processed) lets the runner derive throughput;
    ``text`` is the rendered table/figure for humans; ``payload`` carries
    the raw result object for the shape-check.
    """

    metrics: Mapping[str, float]
    units: float | None = None
    text: str = ""
    payload: Any = None


@dataclass
class BenchmarkSpec:
    """One registered benchmark and its measurement protocol."""

    name: str
    fn: Callable[[BenchContext], BenchResult]
    group: str = "default"
    title: str = ""
    rounds: int = 3
    warmup_rounds: int = 1
    #: metric name -> band, or None to mark the metric informational
    #: (recorded in artifacts but never gated -- wall-clock-derived numbers).
    tolerances: Mapping[str, Tolerance | None] = field(default_factory=dict)
    default_tolerance: Tolerance = DEFAULT_TOLERANCE
    #: tier name -> extra keyword knobs surfaced as ``ctx.params``.
    tiers: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    check_fn: Callable[[BenchResult], None] | None = None

    def __call__(self, ctx: BenchContext) -> BenchResult:
        result = self.fn(ctx)
        if not isinstance(result, BenchResult):
            raise ConfigurationError(
                f"benchmark {self.name!r} returned {type(result).__name__}, "
                "expected BenchResult"
            )
        return result

    def check(self, fn: Callable[[BenchResult], None]) -> Callable:
        """Decorator attaching the benchmark's shape-check."""
        self.check_fn = fn
        return fn

    def run_check(self, result: BenchResult) -> None:
        if self.check_fn is not None:
            self.check_fn(result)

    def context(self, tier: str, seed: int = 0) -> BenchContext:
        """Build the :class:`BenchContext` this spec sees at ``tier``."""
        if tier not in TIERS:
            raise ConfigurationError(
                f"unknown scale tier {tier!r}; use one of {TIERS}"
            )
        return BenchContext(
            tier=tier,
            scale=getattr(Scale, tier)(),
            seed=seed,
            params=dict(self.tiers.get(tier, {})),
        )

    def tolerance_for(self, metric: str) -> Tolerance | None:
        """The band gating ``metric``, or None when it is informational."""
        if metric in self.tolerances:
            return self.tolerances[metric]
        return self.default_tolerance


class Registry:
    """Name -> spec mapping with duplicate detection."""

    def __init__(self) -> None:
        self._specs: dict[str, BenchmarkSpec] = {}

    def add(self, spec: BenchmarkSpec) -> BenchmarkSpec:
        if spec.name in self._specs:
            raise ConfigurationError(
                f"benchmark {spec.name!r} is already registered"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> BenchmarkSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown benchmark {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[BenchmarkSpec]:
        return iter(sorted(self._specs.values(), key=lambda s: (s.group, s.name)))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._specs))

    def select(self, names: list[str] | None = None) -> list[BenchmarkSpec]:
        """Specs for ``names`` (all when None), preserving group order."""
        if not names:
            return list(self)
        return [self.get(name) for name in names]

    def clear(self) -> None:
        self._specs.clear()


#: The process-wide registry the suites populate on import.
REGISTRY = Registry()


def benchmark(
    name: str,
    *,
    group: str = "default",
    title: str = "",
    rounds: int = 3,
    warmup_rounds: int = 1,
    tolerances: Mapping[str, Tolerance | None] | None = None,
    default_tolerance: Tolerance = DEFAULT_TOLERANCE,
    tiers: Mapping[str, Mapping[str, Any]] | None = None,
    registry: Registry | None = None,
) -> Callable[[Callable[[BenchContext], BenchResult]], BenchmarkSpec]:
    """Register a benchmark body; returns the (callable) spec.

    The returned spec doubles as a decorator host: attach the qualitative
    assertion with ``@spec.check``.
    """

    def decorate(fn: Callable[[BenchContext], BenchResult]) -> BenchmarkSpec:
        spec = BenchmarkSpec(
            name=name,
            fn=fn,
            group=group,
            title=title or name,
            rounds=rounds,
            warmup_rounds=warmup_rounds,
            tolerances=dict(tolerances or {}),
            default_tolerance=default_tolerance,
            tiers=dict(tiers or {}),
        )
        return (registry if registry is not None else REGISTRY).add(spec)

    return decorate


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a spec in the process-wide registry (suites auto-loaded)."""
    load_suites()
    return REGISTRY.get(name)


def iter_benchmarks() -> Iterator[BenchmarkSpec]:
    load_suites()
    return iter(REGISTRY)


def load_suites() -> Registry:
    """Import every built-in suite module (idempotent) and return the registry."""
    from repro.bench import suites  # noqa: F401  (import populates REGISTRY)

    return REGISTRY
