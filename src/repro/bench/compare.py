"""Diff a benchmark run against committed baselines: the regression gate.

For every baseline artifact, the matching run artifact must exist, share
its scale tier, and land every gated metric inside the spec's tolerance
band.  Wall-clock-derived numbers are informational by default -- CI
runners are too noisy to gate on -- but ``include_timing`` adds a loose
band on mean wall time for local use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.artifact import BenchArtifact, load_artifact_dir
from repro.bench.registry import (
    REGISTRY,
    DEFAULT_TOLERANCE,
    Registry,
    Tolerance,
    load_suites,
)
from repro.utils.tables import AsciiTable

#: Band used when gating wall time (opt-in): allow a 2x slowdown before
#: failing, because shared CI runners routinely jitter by tens of percent.
TIMING_TOLERANCE = Tolerance(rel=1.0)


@dataclass(frozen=True)
class MetricDiff:
    """One compared metric and its verdict."""

    benchmark: str
    metric: str
    baseline: float
    value: float
    tolerance: Tolerance | None
    ok: bool

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.value == 0 else float("inf")
        return (self.value - self.baseline) / abs(self.baseline) * 100.0

    def describe_band(self) -> str:
        return self.tolerance.describe() if self.tolerance else "informational"


@dataclass
class CompareReport:
    """Everything the gate decided, renderable for humans."""

    diffs: list[MetricDiff] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    unbaselined: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDiff]:
        return [d for d in self.diffs if not d.ok]

    @property
    def passed(self) -> bool:
        return (
            not self.regressions
            and not self.missing
            and not self.unbaselined
            and not self.errors
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def render(self) -> str:
        parts: list[str] = []
        table = AsciiTable(
            ["benchmark", "metric", "baseline", "run", "Δ%", "band", "verdict"],
            title="Benchmark regression gate",
        )
        for diff in self.diffs:
            table.add_row(
                [
                    diff.benchmark,
                    diff.metric,
                    _fmt(diff.baseline),
                    _fmt(diff.value),
                    f"{diff.delta_pct:+.1f}",
                    diff.describe_band(),
                    "ok" if diff.ok else "REGRESSION",
                ]
            )
        parts.append(table.render())
        for name in self.missing:
            parts.append(f"MISSING: baseline {name!r} has no run artifact")
        for name in self.unbaselined:
            parts.append(
                f"UNBASELINED: run artifact {name!r} has no committed baseline; "
                "run `python -m repro.bench update-baseline` and commit the diff"
            )
        for error in self.errors:
            parts.append(f"ERROR: {error}")
        verdict = "PASS" if self.passed else "FAIL"
        gated = [d for d in self.diffs if d.tolerance is not None]
        parts.append(
            f"{verdict}: {len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing, {len(self.unbaselined)} unbaselined, "
            f"{len(gated)} gated metric(s) "
            f"across {len({d.benchmark for d in self.diffs})} benchmark(s)"
        )
        return "\n".join(parts)


def compare_artifacts(
    run: BenchArtifact,
    baseline: BenchArtifact,
    *,
    registry: Registry | None = None,
    include_timing: bool = False,
) -> CompareReport:
    """Compare one run artifact against its baseline."""
    report = CompareReport()
    if run.tier != baseline.tier:
        report.errors.append(
            f"{run.benchmark}: tier mismatch (run {run.tier!r} vs "
            f"baseline {baseline.tier!r}); rerun at the baseline tier"
        )
        return report
    if run.seed != baseline.seed:
        report.errors.append(
            f"{run.benchmark}: seed mismatch (run {run.seed} vs "
            f"baseline {baseline.seed}); rerun with the baseline seed"
        )
        return report
    spec = None
    if registry is not None and run.benchmark in registry:
        spec = registry.get(run.benchmark)
    for metric, base_value in sorted(baseline.metrics.items()):
        if metric not in run.metrics:
            report.errors.append(
                f"{run.benchmark}: metric {metric!r} vanished from the run"
            )
            continue
        value = run.metrics[metric]
        tolerance = spec.tolerance_for(metric) if spec else DEFAULT_TOLERANCE
        ok = tolerance.accepts(value, base_value) if tolerance else True
        report.diffs.append(
            MetricDiff(run.benchmark, metric, base_value, value, tolerance, ok)
        )
    # Symmetric with the vanished-metric error above: a metric the run
    # produces but the baseline lacks would otherwise never be gated.
    for metric in sorted(set(run.metrics) - set(baseline.metrics)):
        report.errors.append(
            f"{run.benchmark}: metric {metric!r} has no baseline value; "
            "refresh baselines with update-baseline"
        )
    if include_timing:
        base_wall = float(baseline.timing.get("wall_s_mean", 0.0))
        run_wall = float(run.timing.get("wall_s_mean", 0.0))
        report.diffs.append(
            MetricDiff(
                run.benchmark,
                "wall_s_mean",
                base_wall,
                run_wall,
                TIMING_TOLERANCE,
                TIMING_TOLERANCE.accepts(run_wall, base_wall),
            )
        )
    return report


def compare_dirs(
    run_dir: Path | str,
    baseline_dir: Path | str,
    *,
    registry: Registry | None = None,
    include_timing: bool = False,
) -> CompareReport:
    """Compare every baseline artifact against the run directory."""
    if registry is None:
        load_suites()
        registry = REGISTRY
    baselines = load_artifact_dir(baseline_dir)
    runs = load_artifact_dir(run_dir)
    report = CompareReport()
    if not baselines:
        report.errors.append(f"no baseline artifacts under {baseline_dir}")
        return report
    for name, baseline in sorted(baselines.items()):
        if name not in runs:
            report.missing.append(name)
            continue
        sub = compare_artifacts(
            runs[name],
            baseline,
            registry=registry,
            include_timing=include_timing,
        )
        report.diffs.extend(sub.diffs)
        report.errors.extend(sub.errors)
    # A run artifact with no baseline is a benchmark with zero regression
    # protection -- fail loudly instead of silently never gating it.
    report.unbaselined = sorted(set(runs) - set(baselines))
    return report


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"
