"""Schema-versioned JSON perf artifacts: ``BENCH_<name>.json``.

One artifact per benchmark per run.  The schema is versioned so the compare
gate can refuse to diff artifacts written by an incompatible harness
instead of silently comparing apples to oranges.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Bump on any backwards-incompatible change to the artifact layout.
SCHEMA = "repro.bench/1"

_REQUIRED_KEYS = ("schema", "benchmark", "group", "tier", "seed",
                  "timing", "metrics", "environment")


def artifact_filename(name: str) -> str:
    """The on-disk filename for benchmark ``name``."""
    return f"BENCH_{name}.json"


@dataclass(frozen=True)
class BenchArtifact:
    """The machine-readable record of one benchmark measurement."""

    benchmark: str
    group: str
    tier: str
    seed: int
    timing: Mapping[str, Any]
    metrics: Mapping[str, float]
    environment: Mapping[str, Any]
    throughput_per_s: float | None = None
    text: str = ""
    schema: str = SCHEMA
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "group": self.group,
            "tier": self.tier,
            "seed": self.seed,
            "timing": dict(self.timing),
            "throughput_per_s": self.throughput_per_s,
            "metrics": {k: _jsonable(v) for k, v in self.metrics.items()},
            "environment": dict(self.environment),
            "text": self.text,
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "BenchArtifact":
        validate_artifact_dict(data)
        return BenchArtifact(
            benchmark=data["benchmark"],
            group=data["group"],
            tier=data["tier"],
            seed=int(data["seed"]),
            timing=dict(data["timing"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            environment=dict(data["environment"]),
            throughput_per_s=data.get("throughput_per_s"),
            text=data.get("text", ""),
            schema=data["schema"],
            extra=dict(data.get("extra", {})),
        )

    def write(self, directory: Path | str) -> Path:
        """Serialize into ``directory``; returns the artifact path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / artifact_filename(self.benchmark)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def validate_artifact_dict(data: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``data`` is a valid artifact."""
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise ConfigurationError(f"artifact missing keys: {missing}")
    if data["schema"] != SCHEMA:
        raise ConfigurationError(
            f"artifact schema {data['schema']!r} is not {SCHEMA!r}; "
            "regenerate baselines with this harness version"
        )
    if not isinstance(data["metrics"], Mapping):
        raise ConfigurationError("artifact 'metrics' must be a mapping")
    for key, value in data["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"metric {key!r} must be numeric, got {type(value).__name__}"
            )


def load_artifact(path: Path | str) -> BenchArtifact:
    """Read and validate one artifact file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read artifact {path}: {exc}") from exc
    return BenchArtifact.from_dict(data)


def load_artifact_dir(directory: Path | str) -> dict[str, BenchArtifact]:
    """Every ``BENCH_*.json`` under ``directory``, keyed by benchmark name."""
    directory = Path(directory)
    artifacts: dict[str, BenchArtifact] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        artifact = load_artifact(path)
        artifacts[artifact.benchmark] = artifact
    return artifacts


def _jsonable(value: Any) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ConfigurationError(f"non-finite metric value {value!r}")
    return value
