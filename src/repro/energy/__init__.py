"""Hardware energy model: the stand-in for the paper's RTL synthesis flow.

The paper implemented each classifier at RTL, synthesized it to an IBM 45 nm
SOI process with Synopsys Design Compiler and measured energy with Power
Compiler.  Offline we replace that flow with:

* :mod:`repro.energy.technology` -- a per-operation energy table for a 45 nm
  process (published ISSCC figures);
* :mod:`repro.energy.models` -- op-weighted network/layer energy, including
  memory traffic;
* :mod:`repro.energy.rtl` -- a synthesis-like estimator producing gate
  counts, area, and power (the Design Compiler substitute).

The paper reports that its measured energy ratios track its operation-count
ratios closely (1.91x OPS -> 1.84x energy for MNIST_3C); an op-weighted
model reproduces exactly that relation, including the memory-access
overhead that makes the energy gain slightly smaller than the OPS gain.
"""

from repro.energy.models import (
    ConditionalEnergyProfile,
    layer_energy,
    network_energy,
    opcount_energy,
)
from repro.energy.report import EnergyReport
from repro.energy.rtl import SynthesisReport, synthesize_layer, synthesize_network
from repro.energy.technology import TECHNOLOGY_45NM, TechnologyModel

__all__ = [
    "ConditionalEnergyProfile",
    "EnergyReport",
    "SynthesisReport",
    "TECHNOLOGY_45NM",
    "TechnologyModel",
    "layer_energy",
    "network_energy",
    "opcount_energy",
    "synthesize_layer",
    "synthesize_network",
]
