"""Process technology constants.

Per-operation energies follow the widely used 45 nm figures published by
M. Horowitz, "Computing's energy problem (and what we can do about it)",
ISSCC 2014, for a ~0.9 V 45 nm process -- the same node as the paper's
IBM 45 nm SOI flow.  Values are in picojoules per operation on 16-bit
fixed-point data (the natural hardware datatype for these small nets;
relative ratios, which are all the reproduction asserts, are insensitive
to the exact width).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyModel:
    """Per-operation energy (pJ) and basic physical constants of a node.

    Attributes
    ----------
    name:
        Human-readable node label.
    mult_pj, add_pj, compare_pj, activation_pj:
        Arithmetic energies.  A MAC spends ``mult_pj + add_pj``.
        Activations are modelled as a small piecewise/LUT unit.
    sram_read_pj, sram_write_pj:
        On-chip buffer access energies per word (weights, activations).
    leakage_overhead:
        Fraction added to dynamic energy to account for leakage plus
        clocking of idle logic.  This is what makes measured energy gains
        slightly smaller than pure OPS gains, as the paper observes.
    gate_area_um2:
        Average placed NAND2-equivalent area, for the synthesis estimator.
    voltage_v, frequency_mhz:
        Nominal operating point used by the power estimator.
    """

    name: str = "generic-45nm"
    mult_pj: float = 1.0
    add_pj: float = 0.05
    compare_pj: float = 0.05
    activation_pj: float = 0.10
    sram_read_pj: float = 1.2
    sram_write_pj: float = 1.4
    leakage_overhead: float = 0.08
    gate_area_um2: float = 1.06
    voltage_v: float = 0.9
    frequency_mhz: float = 500.0

    def __post_init__(self) -> None:
        for field_name in (
            "mult_pj",
            "add_pj",
            "compare_pj",
            "activation_pj",
            "sram_read_pj",
            "sram_write_pj",
            "gate_area_um2",
            "voltage_v",
            "frequency_mhz",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be > 0")
        if not 0 <= self.leakage_overhead < 1:
            raise ConfigurationError("leakage_overhead must be in [0, 1)")

    @property
    def mac_pj(self) -> float:
        """Energy of one multiply-accumulate."""
        return self.mult_pj + self.add_pj

    def scaled_voltage(self, voltage_v: float) -> "TechnologyModel":
        """Return a copy operating at ``voltage_v`` with E ~ V^2 scaling."""
        if voltage_v <= 0:
            raise ConfigurationError(f"voltage must be > 0, got {voltage_v}")
        ratio = (voltage_v / self.voltage_v) ** 2
        return TechnologyModel(
            name=f"{self.name}@{voltage_v:.2f}V",
            mult_pj=self.mult_pj * ratio,
            add_pj=self.add_pj * ratio,
            compare_pj=self.compare_pj * ratio,
            activation_pj=self.activation_pj * ratio,
            sram_read_pj=self.sram_read_pj * ratio,
            sram_write_pj=self.sram_write_pj * ratio,
            leakage_overhead=self.leakage_overhead,
            gate_area_um2=self.gate_area_um2,
            voltage_v=voltage_v,
            frequency_mhz=self.frequency_mhz,
        )


#: Default 45 nm model (16-bit datapath; Horowitz ISSCC'14-derived numbers:
#: 16b multiply ~1.0 pJ, 16b add ~0.05 pJ, small-SRAM word access ~1.2 pJ).
TECHNOLOGY_45NM = TechnologyModel(name="ibm45soi-like")
