"""Energy models built on operation counts.

Energy for a layer is its arithmetic energy plus its memory traffic:

* every MAC fetches one weight word (SRAM read);
* every output element is written once (SRAM write) and every input element
  is read once per consuming layer (folded into the MAC weight fetch for
  conv/dense; pooling and activations read their inputs explicitly);
* a leakage/clock overhead multiplies the total.

These choices follow the standard accelerator energy breakdown and
reproduce the paper's observation that energy gains (Fig. 6) are slightly
below OPS gains (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Layer
from repro.nn.network import Network
from repro.ops.counting import OpCount, count_layer_ops
from repro.ops.profile import ConditionalOpsProfile, PathCostTable
from repro.energy.technology import TECHNOLOGY_45NM, TechnologyModel


def opcount_energy(ops: OpCount, tech: TechnologyModel = TECHNOLOGY_45NM) -> float:
    """Energy (pJ) of an operation bundle, including weight-fetch traffic.

    Each MAC is charged its arithmetic energy plus one SRAM weight read;
    comparisons/adds/activations are charged arithmetic only (their operands
    are freshly produced activations held in local registers).  Leakage
    overhead is applied multiplicatively.
    """
    dynamic = (
        ops.macs * (tech.mac_pj + tech.sram_read_pj)
        + ops.adds * tech.add_pj
        + ops.comparisons * tech.compare_pj
        + ops.activations * tech.activation_pj
    )
    return dynamic * (1.0 + tech.leakage_overhead)


def layer_energy(layer: Layer, tech: TechnologyModel = TECHNOLOGY_45NM) -> float:
    """Energy (pJ) of one input through ``layer``, including the write-back
    of its output activations."""
    ops = count_layer_ops(layer)
    elements = 1
    for d in layer.output_shape:
        elements *= d
    write_back = elements * tech.sram_write_pj * (1.0 + tech.leakage_overhead)
    return opcount_energy(ops, tech) + write_back


def network_energy(network: Network, tech: TechnologyModel = TECHNOLOGY_45NM) -> float:
    """Energy (pJ) of a full forward pass for one input."""
    return float(sum(layer_energy(layer, tech) for layer in network.layers))


@dataclass(frozen=True)
class ConditionalEnergyProfile:
    """Per-input energy for a conditionally executed batch.

    Mirrors :class:`~repro.ops.profile.ConditionalOpsProfile`, but in
    picojoules: each exit stage's :class:`OpCount` is converted to energy
    through the technology model.
    """

    per_input_pj: np.ndarray
    exit_stages: np.ndarray
    labels: np.ndarray
    baseline_pj: float
    technology: TechnologyModel
    #: Fixed per-input cost paid regardless of exit depth (input buffering,
    #: result write-out).  Both the baseline and the conditional network pay
    #: it, which is why measured energy gains sit slightly below OPS gains.
    fixed_overhead_pj: float = 0.0

    def __post_init__(self) -> None:
        n = self.per_input_pj.shape[0]
        if self.exit_stages.shape != (n,) or self.labels.shape != (n,):
            raise ConfigurationError("profile arrays must share one length")
        if self.baseline_pj <= 0:
            raise ConfigurationError("baseline energy must be > 0")

    @property
    def average_pj(self) -> float:
        return float(self.per_input_pj.mean())

    @property
    def energy_improvement(self) -> float:
        """Baseline energy / conditional energy (the paper's "1.84x")."""
        return self.baseline_pj / self.average_pj

    @property
    def normalized_energy(self) -> float:
        return self.average_pj / self.baseline_pj

    def per_digit_average_pj(self, num_classes: int = 10) -> np.ndarray:
        out = np.full(num_classes, np.nan)
        for digit in range(num_classes):
            mask = self.labels == digit
            if mask.any():
                out[digit] = float(self.per_input_pj[mask].mean())
        return out

    def per_digit_improvement(self, num_classes: int = 10) -> np.ndarray:
        """Baseline/conditional energy ratio per digit (Fig. 6 bars)."""
        return self.baseline_pj / self.per_digit_average_pj(num_classes)

    @staticmethod
    def from_ops_profile(
        profile: ConditionalOpsProfile,
        tech: TechnologyModel = TECHNOLOGY_45NM,
        *,
        fixed_overhead_pj: float = 0.0,
    ) -> "ConditionalEnergyProfile":
        """Convert an OPS profile to energy through a technology model.

        ``fixed_overhead_pj`` is added to every input's energy *and* to the
        baseline's (e.g. input-image buffering), compressing the energy
        ratio slightly below the OPS ratio as real measurements show.
        """
        if fixed_overhead_pj < 0:
            raise ConfigurationError("fixed_overhead_pj must be >= 0")
        costs: PathCostTable = profile.costs
        exit_pj = np.array(
            [opcount_energy(c, tech) for c in costs.exit_costs], dtype=np.float64
        )
        return ConditionalEnergyProfile(
            per_input_pj=exit_pj[profile.exit_stages] + fixed_overhead_pj,
            exit_stages=profile.exit_stages,
            labels=profile.labels,
            baseline_pj=opcount_energy(costs.baseline_cost, tech) + fixed_overhead_pj,
            technology=tech,
            fixed_overhead_pj=fixed_overhead_pj,
        )
