"""Combined energy reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.network import Network
from repro.energy.models import network_energy
from repro.energy.rtl import SynthesisReport, synthesize_network
from repro.energy.technology import TECHNOLOGY_45NM, TechnologyModel
from repro.ops.counting import network_total_ops
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class EnergyReport:
    """One network's cost summary: OPS, energy, and synthesis estimates."""

    name: str
    total_ops: int
    energy_pj: float
    synthesis: SynthesisReport

    @staticmethod
    def for_network(
        network: Network,
        name: str = "network",
        tech: TechnologyModel = TECHNOLOGY_45NM,
    ) -> "EnergyReport":
        return EnergyReport(
            name=name,
            total_ops=network_total_ops(network),
            energy_pj=network_energy(network, tech),
            synthesis=synthesize_network(network, tech, name=name),
        )

    def render(self) -> str:
        table = AsciiTable(["metric", "value"], title=f"Energy report: {self.name}")
        table.add_row(["OPS / input", self.total_ops])
        table.add_row(["energy / input (pJ)", round(self.energy_pj, 1)])
        table.add_row(["gate count (NAND2-eq)", self.synthesis.gate_count])
        table.add_row(["area (um^2)", round(self.synthesis.area_um2, 1)])
        table.add_row(["dynamic power (mW)", round(self.synthesis.dynamic_mw, 3)])
        table.add_row(["leakage power (mW)", round(self.synthesis.leakage_mw, 3)])
        table.add_row(["cycles / input", self.synthesis.cycles_per_input])
        return table.render()
