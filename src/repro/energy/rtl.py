"""Synthesis-like area/power estimation (the Design Compiler substitute).

The paper synthesized each classifier to IBM 45 nm SOI with Synopsys Design
Compiler and estimated power with Power Compiler.  This module provides an
analytic stand-in: for each layer it sizes a datapath (MAC/compare units +
weight SRAM), converts it to NAND2-equivalent gate counts and area, and
derives dynamic and leakage power at the technology's nominal operating
point.  The absolute numbers are first-order, but the *relative* numbers
between classifiers -- all the evaluation uses -- follow the same geometry
scaling a real synthesis run would show.

Gate-count assumptions (16-bit datapath, standard textbook figures):
a 16x16 array multiplier ~ 2900 NAND2, a 16-bit ripple adder ~ 90 NAND2,
a 16-bit comparator ~ 80 NAND2, a 16-bit register ~ 110 NAND2, SRAM
~ 1.6 NAND2-equivalents per bit including periphery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nn.layers import AvgPool2D, Conv2D, Dense, Layer, MaxPool2D
from repro.nn.network import Network
from repro.ops.counting import count_layer_ops
from repro.energy.models import layer_energy
from repro.energy.technology import TECHNOLOGY_45NM, TechnologyModel

_GATES_MULTIPLIER = 2900
_GATES_ADDER = 90
_GATES_COMPARATOR = 80
_GATES_REGISTER = 110
_GATES_PER_SRAM_BIT = 1.6
_WORD_BITS = 16
#: Leakage per NAND2-equivalent at 45 nm, nanowatts.
_LEAKAGE_NW_PER_GATE = 2.0


@dataclass(frozen=True)
class SynthesisReport:
    """Synthesis-style summary for one block (layer) or a whole design."""

    name: str
    gate_count: int
    area_um2: float
    sram_bits: int
    dynamic_mw: float
    leakage_mw: float
    cycles_per_input: int
    energy_per_input_pj: float

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    def merged(self, other: "SynthesisReport", name: str) -> "SynthesisReport":
        """Combine two block reports into one design-level report."""
        return SynthesisReport(
            name=name,
            gate_count=self.gate_count + other.gate_count,
            area_um2=self.area_um2 + other.area_um2,
            sram_bits=self.sram_bits + other.sram_bits,
            dynamic_mw=self.dynamic_mw + other.dynamic_mw,
            leakage_mw=self.leakage_mw + other.leakage_mw,
            cycles_per_input=self.cycles_per_input + other.cycles_per_input,
            energy_per_input_pj=self.energy_per_input_pj + other.energy_per_input_pj,
        )


def _datapath_gates(layer: Layer) -> tuple[int, int]:
    """(arithmetic gates, SRAM bits) for a layer's hardware block.

    Conv/dense blocks get one MAC lane per output map (a modest spatial
    unrolling) plus weight SRAM; pooling gets one comparator/adder tree per
    map.
    """
    if isinstance(layer, Conv2D):
        lanes = layer.num_maps
        gates = lanes * (_GATES_MULTIPLIER + _GATES_ADDER + _GATES_REGISTER)
        weights = layer.num_params
        return gates, weights * _WORD_BITS
    if isinstance(layer, Dense):
        lanes = min(layer.units, 16)
        gates = lanes * (_GATES_MULTIPLIER + _GATES_ADDER + _GATES_REGISTER)
        weights = layer.num_params
        return gates, weights * _WORD_BITS
    if isinstance(layer, MaxPool2D):
        maps = layer.output_shape[0]
        return maps * (_GATES_COMPARATOR + _GATES_REGISTER), 0
    if isinstance(layer, AvgPool2D):
        maps = layer.output_shape[0]
        return maps * (_GATES_ADDER + _GATES_REGISTER), 0
    # Flatten/activation/dropout: wiring plus a small LUT.
    return _GATES_REGISTER, 0


def synthesize_layer(
    layer: Layer, tech: TechnologyModel = TECHNOLOGY_45NM
) -> SynthesisReport:
    """Estimate gates/area/power for one layer's hardware block."""
    if not layer.built:
        raise ConfigurationError(f"layer {layer.name!r} must be built first")
    arithmetic_gates, sram_bits = _datapath_gates(layer)
    gate_count = arithmetic_gates + int(sram_bits * _GATES_PER_SRAM_BIT)
    area = gate_count * tech.gate_area_um2
    energy_pj = layer_energy(layer, tech)

    ops = count_layer_ops(layer)
    # One MAC (or comparison/add) per lane per cycle.
    lanes = max(arithmetic_gates // (_GATES_MULTIPLIER + _GATES_ADDER + _GATES_REGISTER), 1)
    work = max(ops.macs, ops.adds + ops.comparisons)
    cycles = max(int(work / lanes), 1)
    seconds_per_input = cycles / (tech.frequency_mhz * 1e6)
    dynamic_mw = energy_pj * 1e-12 / seconds_per_input * 1e3
    leakage_mw = gate_count * _LEAKAGE_NW_PER_GATE * 1e-6
    return SynthesisReport(
        name=layer.name,
        gate_count=gate_count,
        area_um2=area,
        sram_bits=sram_bits,
        dynamic_mw=dynamic_mw,
        leakage_mw=leakage_mw,
        cycles_per_input=cycles,
        energy_per_input_pj=energy_pj,
    )


def synthesize_network(
    network: Network, tech: TechnologyModel = TECHNOLOGY_45NM, name: str = "design"
) -> SynthesisReport:
    """Estimate a whole network as one integrated design."""
    reports = [synthesize_layer(layer, tech) for layer in network.layers]
    merged = reports[0]
    for rep in reports[1:]:
        merged = merged.merged(rep, name)
    return SynthesisReport(
        name=name,
        gate_count=merged.gate_count,
        area_um2=merged.area_um2,
        sram_bits=merged.sram_bits,
        dynamic_mw=merged.dynamic_mw,
        leakage_mw=merged.leakage_mw,
        cycles_per_input=merged.cycles_per_input,
        energy_per_input_pj=merged.energy_per_input_pj,
    )
