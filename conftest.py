"""Root pytest config: a per-test wall-clock ceiling, everywhere.

``pytest.ini`` sets ``timeout = 120`` so a wedged worker thread or a
deadlocked ticket wait fails one test loudly instead of eating a whole
CI job's ``timeout-minutes``.  When the real ``pytest-timeout`` plugin
is installed (CI installs it via ``requirements-ci.txt``) it owns the
option and this file stays out of the way.  In minimal environments
without the plugin, this conftest registers the same ``timeout`` ini
key and ``@pytest.mark.timeout`` marker and enforces them with a
SIGALRM watchdog -- POSIX, main thread only; elsewhere the ceiling is
simply not enforced (a no-op, never an error).
"""

from __future__ import annotations

import signal
import threading

import pytest


def _fallback_active(config) -> bool:
    return not config.pluginmanager.hasplugin("timeout")


def pytest_addoption(parser, pluginmanager):
    if pluginmanager.hasplugin("timeout"):
        return
    parser.addini(
        "timeout",
        "per-test wall-clock ceiling in seconds "
        "(SIGALRM fallback; pytest-timeout owns this when installed)",
        default=None,
    )


def pytest_configure(config):
    if _fallback_active(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock ceiling "
            "(overrides the `timeout` ini value)",
        )


def _ceiling_s(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    raw = item.config.getini("timeout")
    return float(raw) if raw else 0.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    enforce = (
        _fallback_active(item.config)
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    seconds = _ceiling_s(item) if enforce else 0.0
    if not seconds > 0:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {seconds:g}s per-test ceiling "
            "(conftest SIGALRM fallback)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
