"""Fault injection + resilience layer: plans, isolation, supervision.

Covers the chaos PR end to end:

* ``FaultPlan`` / ``FaultSpec`` -- validation, seeded determinism, JSONL
  round-trip, windows, transient semantics;
* the synchronous engine's failure ladder -- poison-batch bisection,
  bounded retries, degraded engage/release, NaN intake validation,
  ``Ticket.cancel`` purging, ``health()``;
* the async facade -- the stranded-ticket wedge the supervisor fixes
  (pinned pre-fix), supervised restarts, restart-budget exhaustion,
  ``stop(drain=True)`` timeout, start/stop idempotence;
* the accounting -- SLO report failed/degraded/availability fields,
  metrics counters, and :func:`repro.obs.reconcile_errors` agreeing
  exactly on a simulated chaos run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    InputValidationError,
    RequestCancelled,
    SerializationError,
)
from repro.obs import Observer, read_spans, reconcile_errors
from repro.serving import (
    ArrivalSchedule,
    AsyncEngine,
    InferenceEngine,
    LoadRunner,
    MicroBatchPolicy,
    RequestFailed,
    ResiliencePolicy,
    ServingConfig,
    SLOReport,
)
from repro.serving.engine import Ticket
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    merge_plans,
)
from repro.serving.slo import RequestOutcome

DELTA = 0.6


def _engine(trained, **cfg_kwargs) -> InferenceEngine:
    cfg_kwargs.setdefault("policy", MicroBatchPolicy(max_batch_size=8))
    return InferenceEngine.from_config(
        ServingConfig(model=trained.cdln, delta=DELTA, **cfg_kwargs)
    )


@pytest.fixture()
def images(trained_3c):
    shape = trained_3c.cdln.baseline.input_shape
    rng = np.random.default_rng(0)
    return rng.standard_normal((16, *shape)).astype(np.float64)


# -- fault plans ---------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="nope", rate=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="request_error", rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="latency_spike", rate=0.5)  # needs magnitude
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="raise_in_batch", rate=0.5, transient=True)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="request_error", rate=0.5, fires=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="request_error", rate=0.5, first=4, last=2)

    def test_decide_is_pure_and_seeded(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="request_error", rate=0.3),), seed=11
        )
        first = [plan.decide(0, i) for i in range(200)]
        again = [plan.decide(0, i) for i in range(200)]
        assert first == again
        assert any(first) and not all(first)
        other = plan.with_seed(12)
        assert [other.decide(0, i) for i in range(200)] != first

    def test_rate_extremes_and_window(self):
        always = FaultPlan(
            specs=(
                FaultSpec(kind="raise_in_batch", rate=1.0, first=3, last=5),
            )
        )
        assert not always.decide(0, 2)
        assert all(always.decide(0, i) for i in (3, 4, 5))
        assert not always.decide(0, 6)
        never = FaultPlan(specs=(FaultSpec(kind="request_error", rate=0.0),))
        assert not any(never.decide(0, i) for i in range(50))

    def test_jsonl_round_trip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="raise_in_batch", rate=1.0, first=6, last=30),
                FaultSpec(
                    kind="request_error", rate=0.01, transient=True, fires=2
                ),
                FaultSpec(kind="latency_spike", rate=0.05, magnitude_s=0.002),
            ),
            seed=42,
        )
        path = plan.save_jsonl(tmp_path / "plan.jsonl")
        assert FaultPlan.from_jsonl(path) == plan

    def test_from_jsonl_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope", "seed": 0}) + "\n")
        with pytest.raises(SerializationError):
            FaultPlan.from_jsonl(path)
        path.write_text("")
        with pytest.raises(SerializationError):
            FaultPlan.from_jsonl(path)

    def test_merge_plans_and_describe(self):
        a = FaultPlan(specs=(FaultSpec(kind="request_error", rate=0.1),))
        b = FaultPlan(
            specs=(FaultSpec(kind="latency_spike", rate=0.2, magnitude_s=0.01),),
            seed=5,
        )
        merged = merge_plans([a, b], seed=9)
        assert len(merged.specs) == 2 and merged.seed == 9
        text = merged.describe()
        assert "request_error" in text and "latency_spike" in text


class TestFaultInjector:
    def test_transient_stops_after_fires(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="request_error", rate=1.0, transient=True, fires=2
                ),
            )
        )
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.on_dispatch(batch_index=0, request_ids=[7])
        # Third attempt: the transient budget is spent; the request serves.
        assert injector.on_dispatch(batch_index=0, request_ids=[7]) == 0.0
        injector.reset()
        with pytest.raises(InjectedFault):
            injector.on_dispatch(batch_index=0, request_ids=[7])

    def test_raise_in_batch_suppressed_when_protected(self):
        plan = FaultPlan(specs=(FaultSpec(kind="raise_in_batch", rate=1.0),))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.on_dispatch(batch_index=0, request_ids=[0])
        assert (
            injector.on_dispatch(
                batch_index=0, request_ids=[0], protected=True
            )
            == 0.0
        )

    def test_delay_kinds_accumulate(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="latency_spike", rate=1.0, magnitude_s=0.01),
                FaultSpec(kind="worker_stall", rate=1.0, magnitude_s=0.1),
            )
        )
        delay = FaultInjector(plan).on_dispatch(batch_index=0, request_ids=[0])
        assert delay == pytest.approx(0.11)

    def test_corrupt_image_poisons_deterministically(self, images):
        plan = FaultPlan(
            specs=(FaultSpec(kind="corrupt_input", rate=1.0, first=1, last=1),)
        )
        injector = FaultInjector(plan)
        untargeted = images[0]
        assert injector.corrupt_image(0, untargeted) is untargeted
        poisoned = injector.corrupt_image(1, images[1])
        assert not np.isfinite(poisoned).all()
        # The caller's pool is never mutated.
        assert np.isfinite(images[1]).all()


# -- synchronous engine ladder -------------------------------------------------
class TestIsolationAndRetries:
    def test_poison_request_is_quarantined_alone(self, trained_3c, images):
        # Exactly request id 3 is poisoned, persistently.
        plan = FaultPlan(
            specs=(FaultSpec(kind="request_error", rate=1.0, first=3, last=3),)
        )
        engine = _engine(
            trained_3c,
            resilience=ResiliencePolicy(max_retries=1, degraded_after=0),
            faults=plan,
        )
        tickets = [engine.submit(images[i]) for i in range(8)]
        engine.flush()
        answers = [t.result(timeout=0) for t in tickets]
        assert [a.failed for a in answers] == [False] * 3 + [True] + [False] * 4
        failure = answers[3]
        assert isinstance(failure, RequestFailed)
        assert failure.error == "injected_fault"
        assert failure.retries == 1
        snap = engine.metrics.snapshot()
        assert dict(snap.failed_by_cause) == {"injected_fault": 1}
        assert snap.failed_requests == 1
        assert snap.retries >= 1

    def test_transient_fault_saved_by_retry(self, trained_3c, images):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="request_error", rate=1.0, transient=True, fires=1,
                    first=2, last=2,
                ),
            )
        )
        # Singleton batches so the save comes from _retry_single (a larger
        # batch's bisection would re-dispatch -- and thereby absorb -- the
        # transient before the retry ladder ever sees it).
        engine = _engine(
            trained_3c,
            policy=MicroBatchPolicy(max_batch_size=1),
            resilience=ResiliencePolicy(max_retries=1, degraded_after=0),
            faults=plan,
        )
        answers = engine.classify_many(images[:8])
        assert all(not a.failed for a in answers)
        snap = engine.metrics.snapshot()
        assert snap.failed_requests == 0
        assert snap.retries >= 1

    def test_degraded_engages_and_releases(self, trained_3c, images):
        # Batch 0 raises; with zero retries one failure trips the episode.
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise_in_batch", rate=1.0, first=0, last=0),)
        )
        engine = _engine(
            trained_3c,
            policy=MicroBatchPolicy(max_batch_size=1),
            resilience=ResiliencePolicy(
                # The window counts dispatches from engagement, and the
                # engaging (failed) dispatch is the first: 3 leaves two
                # degraded-served requests before the probe.
                max_retries=0, degraded_after=1, degraded_window=3
            ),
            faults=plan,
        )
        failed = engine.classify(images[0])
        assert failed.failed and failed.error == "injected_fault"
        health = engine.health()
        assert health.degraded and not health.ready and health.live
        # The next two dispatches serve from the degraded stage-0 path.
        for i in (1, 2):
            answer = engine.classify(images[i])
            assert not answer.failed
            assert answer.degraded and answer.exit_stage == 0
        # Episode over: full service resumes (the fault window has passed).
        answer = engine.classify(images[3])
        assert not answer.degraded
        assert engine.health().ready
        snap = engine.metrics.snapshot()
        assert snap.degraded_requests == 2

    def test_unprotected_engine_still_propagates(self, trained_3c, images):
        plan = FaultPlan(specs=(FaultSpec(kind="raise_in_batch", rate=1.0),))
        engine = _engine(trained_3c, faults=plan)
        with pytest.raises(InjectedFault):
            engine.classify(images[0])


class TestInputValidation:
    def test_nan_rejected_at_intake(self, trained_3c, images):
        engine = _engine(trained_3c)
        bad = images[0].copy()
        bad.reshape(-1)[0] = np.inf
        with pytest.raises(InputValidationError):
            engine.submit(bad)

    def test_resilient_engine_fails_the_ticket_instead(self, trained_3c, images):
        engine = _engine(trained_3c, resilience=ResiliencePolicy())
        bad = images[0].copy()
        bad.reshape(-1)[0] = np.nan
        ticket = engine.submit(bad)
        failure = ticket.result(timeout=0)
        assert failure.failed and failure.error == "invalid_input"
        assert dict(engine.metrics.snapshot().failed_by_cause) == {
            "invalid_input": 1
        }

    def test_validation_is_skippable(self, trained_3c, images):
        engine = _engine(trained_3c, validate_inputs=False)
        bad = images[0].copy()
        bad.reshape(-1)[0] = np.nan
        response = engine.classify(bad)
        assert not response.failed  # trusted intake: garbage in, label out


class TestTicketCancel:
    def test_cancelled_ticket_is_purged_not_served(self, trained_3c, images):
        engine = _engine(trained_3c)
        keep = engine.submit(images[0])
        abandon = engine.submit(images[1])
        assert abandon.cancel() is True
        assert abandon.cancelled
        served = engine.flush()
        assert served == 1
        assert not keep.result(timeout=0).failed
        with pytest.raises(RequestCancelled):
            abandon.result(timeout=0)
        assert engine.pending_count() == 0

    def test_cancel_after_resolution_loses(self, trained_3c, images):
        engine = _engine(trained_3c)
        response = engine.classify(images[0])
        assert not response.failed
        ticket = engine.submit(images[1])
        engine.flush()
        assert ticket.cancel() is False
        assert not ticket.result(timeout=0).failed

    def test_all_cancelled_batch_drains_to_nothing(self, trained_3c, images):
        engine = _engine(trained_3c)
        tickets = [engine.submit(images[i]) for i in range(3)]
        for ticket in tickets:
            ticket.cancel()
        assert engine.flush() == 0
        assert engine.pending_count() == 0

    def test_cancel_resolves_result_waiters(self):
        ticket = Ticket(0)
        ticket.cancel()
        with pytest.raises(RequestCancelled):
            ticket.result(timeout=0)


# -- async facade: supervision -------------------------------------------------
def _crashy_plan() -> FaultPlan:
    return FaultPlan(specs=(FaultSpec(kind="raise_in_batch", rate=1.0),))


class TestAsyncSupervision:
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_unsupervised_worker_strands_tickets(self, trained_3c, images):
        """The pre-resilience wedge, pinned: crash kills the worker and
        the ticket never resolves."""
        engine = _engine(trained_3c, faults=_crashy_plan())
        server = AsyncEngine(engine).start()
        try:
            ticket = server.submit(images[0])
            with pytest.raises(TimeoutError):
                ticket.result(timeout=1.0)
            server._thread.join(timeout=5.0)
            assert not server.running  # the worker is simply dead
            assert not server.health().live
        finally:
            server.stop(drain=False)

    def test_supervised_restart_fails_inflight_and_recovers(
        self, trained_3c, images
    ):
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise_in_batch", rate=1.0, first=0, last=0),)
        )
        engine = _engine(
            trained_3c,
            resilience=ResiliencePolicy(
                isolate=False, degraded_after=0, max_restarts=3,
                backoff_base_s=0.001, backoff_max_s=0.002,
            ),
            faults=plan,
        )
        with AsyncEngine(engine) as server:
            crashed = server.submit(images[0])
            failure = crashed.result(timeout=5.0)
            assert failure.failed and failure.error == "worker_crash"
            # The restarted worker serves the next request (batch ids have
            # moved past the fault window).
            answer = server.submit(images[1]).result(timeout=5.0)
            assert not answer.failed
            assert server.worker_restarts == 1
            health = server.health()
            assert health.live and health.ready
            assert health.restart_budget_remaining == 2

    def test_restart_budget_exhaustion_fails_backlog(self, trained_3c, images):
        engine = _engine(
            trained_3c,
            policy=MicroBatchPolicy(max_batch_size=1, max_wait_s=0.0),
            resilience=ResiliencePolicy(
                isolate=False, degraded_after=0, max_restarts=1,
                backoff_base_s=0.001, backoff_max_s=0.002,
            ),
            faults=_crashy_plan(),
        )
        server = AsyncEngine(engine).start()
        try:
            tickets = [server.submit(images[i]) for i in range(6)]
            answers = [t.result(timeout=10.0) for t in tickets]
            assert all(a.failed for a in answers)
            causes = {a.error for a in answers}
            assert causes == {"worker_crash", "restart_budget"}
            server._thread.join(timeout=5.0)
            health = server.health()
            assert not health.live and not health.ready
            assert health.restart_budget_remaining == 0
        finally:
            server.stop(drain=False)

    def test_stop_drain_timeout_then_clean_stop(self, trained_3c, images):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="worker_stall", rate=1.0, magnitude_s=0.4,
                          first=0, last=0),
            )
        )
        engine = _engine(trained_3c, faults=plan)
        server = AsyncEngine(engine).start()
        ticket = server.submit(images[0])
        # The worker is mid-stall: a short drain deadline must time out
        # loudly, leave the worker running, and allow a retried stop.
        with pytest.raises(TimeoutError):
            server.stop(drain=True, timeout=0.05)
        assert server.running
        server.stop(drain=True, timeout=10.0)
        assert not server.running
        assert not ticket.result(timeout=0).failed

    def test_double_start_rejected_and_stop_idempotent(self, trained_3c):
        engine = _engine(trained_3c)
        server = AsyncEngine(engine)
        server.stop()  # never started: a no-op, not an error
        server.start()
        with pytest.raises(ConfigurationError):
            server.start()
        server.stop()
        server.stop()  # second stop: also a no-op
        assert not server.running
        server.start()  # restartable after a clean stop
        server.stop()


# -- accounting: report, metrics, trace ---------------------------------------
def _outcome(request_id, *, failed=False, error=None, degraded=False,
             latency_s=0.01, arrival_s=0.0):
    return RequestOutcome(
        request_id=request_id,
        arrival_s=arrival_s,
        queue_wait_s=0.0,
        latency_s=latency_s,
        exit_stage=-1 if failed else 0,
        ops=0.0 if failed else 100.0,
        energy_pj=0.0,
        shed=False,
        deadline_s=None,
        deadline_met=not failed,
        failed=failed,
        error=error,
        degraded=degraded,
    )


class TestSLOReportFailures:
    def test_failed_and_degraded_accounting(self):
        outcomes = (
            [_outcome(i) for i in range(6)]
            + [_outcome(6, degraded=True), _outcome(7, degraded=True)]
            + [
                _outcome(8, failed=True, error="injected_fault"),
                _outcome(9, failed=True, error="invalid_input"),
            ]
        )
        report = SLOReport.from_outcomes(
            outcomes, slo_p99_s=0.1, requests=12, offered_span_s=1.0
        )
        assert report.answered == 8
        assert report.failed_count == 2
        assert report.failed_fraction == pytest.approx(2 / 12)
        assert report.degraded_count == 2
        assert report.degraded_fraction == pytest.approx(2 / 8)
        assert report.dropped == 2  # 12 scheduled - 8 answered - 2 failed
        # Availability: answered within the SLO bound over *submitted*.
        assert report.availability == pytest.approx(8 / 12)
        rendered = report.render()
        assert "failed" in rendered and "availability" in rendered

    def test_failed_excluded_from_latency_stats(self):
        outcomes = [
            _outcome(0, latency_s=0.01),
            _outcome(1, latency_s=0.03),
            _outcome(2, failed=True, error="deadline", latency_s=99.0),
        ]
        report = SLOReport.from_outcomes(outcomes, slo_p99_s=0.1)
        assert report.latency_p99_s <= 0.03
        assert report.slo_met

    def test_all_failed_is_an_error(self):
        outcomes = [_outcome(0, failed=True, error="compute_error")]
        with pytest.raises(ConfigurationError):
            SLOReport.from_outcomes(outcomes, slo_p99_s=0.1)

    def test_pre_chaos_json_still_loads(self):
        report = SLOReport.from_outcomes(
            [_outcome(i) for i in range(4)], slo_p99_s=0.1
        )
        payload = json.loads(report.to_json())
        for key in (
            "failed_count", "failed_fraction", "degraded_count",
            "degraded_fraction", "availability",
        ):
            del payload[key]
        loaded = SLOReport.from_json(json.dumps(payload))
        assert loaded.failed_count == 0
        assert loaded.availability == 1.0


class TestReconcileErrors:
    def test_reconcile_errors_from_spans(self):
        spans = [
            {"error": None, "degraded": False},
            {"error": None, "degraded": True},
            {"error": "injected_fault", "degraded": False},
            {"error": "injected_fault"},
            {"error": "invalid_input"},
            {},  # pre-resilience span: neither key
        ]
        failed, degraded, count = reconcile_errors(spans)
        assert failed == {"injected_fault": 2, "invalid_input": 1}
        assert degraded == 1
        assert count == 6


class TestChaosSimulation:
    @staticmethod
    def chaos_plan():
        return FaultPlan(
            specs=(
                FaultSpec(kind="raise_in_batch", rate=1.0, first=4, last=12),
                FaultSpec(
                    kind="request_error", rate=0.02, transient=True, fires=1,
                    first=30,
                ),
                FaultSpec(kind="request_error", rate=1.0, first=50, last=50),
                FaultSpec(kind="corrupt_input", rate=1.0, first=60, last=60),
                FaultSpec(kind="latency_spike", rate=0.1, magnitude_s=0.002),
            ),
            seed=42,
        )

    def _run(self, trained, test_images, plan, observer=None):
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained.cdln,
                delta=DELTA,
                policy=MicroBatchPolicy(max_batch_size=8, max_wait_s=0.05),
                resilience=ResiliencePolicy(
                    max_retries=1, degraded_after=2, degraded_window=4
                ),
                faults=plan,
                observer=observer,
            )
        )
        schedule = ArrivalSchedule.poisson(
            rate_rps=120.0, duration_s=1.5, seed=3, deadline_s=0.25
        )
        runner = LoadRunner(engine, schedule, test_images)
        report = runner.simulate(ops_per_second=3e8, slo_p99_s=0.25)
        return engine, report

    def test_three_ledger_reconciliation(
        self, trained_3c, tiny_test_set, tmp_path
    ):
        with Observer.to_directory(tmp_path, meta={"test": "chaos"}) as obs:
            engine, report = self._run(
                trained_3c, tiny_test_set.images, self.chaos_plan(), obs
            )
            obs.flush()
            spans = read_spans(tmp_path / "trace.jsonl")
        snap = engine.metrics.snapshot()
        failed_by_cause, degraded, count = reconcile_errors(spans)
        assert report.dropped == 0
        assert report.failed_count > 0 and report.degraded_count > 0
        assert count == report.answered + report.failed_count
        assert sum(failed_by_cause.values()) == report.failed_count
        assert dict(snap.failed_by_cause) == failed_by_cause
        assert snap.degraded_requests == report.degraded_count == degraded
        assert snap.failed_requests == report.failed_count
        # The targeted faults landed as planned.
        assert failed_by_cause.get("invalid_input") == 1
        assert failed_by_cause.get("injected_fault", 0) >= 1
        assert snap.retries > 0

    def test_chaos_simulation_is_deterministic(
        self, trained_3c, tiny_test_set
    ):
        chaos_plan = self.chaos_plan()
        _, first = self._run(trained_3c, tiny_test_set.images, chaos_plan)
        _, second = self._run(trained_3c, tiny_test_set.images, chaos_plan)
        assert first == second

    def test_unprotected_run_wedges(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=DELTA,
                policy=MicroBatchPolicy(max_batch_size=8, max_wait_s=0.05),
                faults=self.chaos_plan(),
            )
        )
        schedule = ArrivalSchedule.poisson(
            rate_rps=120.0, duration_s=1.5, seed=3
        )
        runner = LoadRunner(engine, schedule, tiny_test_set.images)
        report = runner.simulate(ops_per_second=3e8, slo_p99_s=0.25)
        assert report.dropped > 0
        assert report.availability < 0.5

    def test_fault_plan_via_runner_param(self, trained_3c, tiny_test_set):
        """LoadRunner(fault_plan=...) installs the injector on the engine."""
        plan = FaultPlan(
            specs=(FaultSpec(kind="request_error", rate=1.0, first=2, last=2),)
        )
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=DELTA,
                policy=MicroBatchPolicy(max_batch_size=4, max_wait_s=0.05),
                resilience=ResiliencePolicy(max_retries=0, degraded_after=0),
            )
        )
        schedule = ArrivalSchedule.poisson(
            rate_rps=100.0, duration_s=0.5, seed=3
        )
        runner = LoadRunner(
            engine, schedule, tiny_test_set.images, fault_plan=plan
        )
        assert engine.faults is not None
        report = runner.simulate(ops_per_second=3e8, slo_p99_s=0.25)
        assert report.failed_count == 1


class TestResiliencePolicyValidation:
    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_max_s=0.01, backoff_base_s=0.05)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(degraded_window=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(cancel_after_deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(isolate=False)  # degraded needs isolation
        ResiliencePolicy(isolate=False, degraded_after=0)  # explicit: fine

    def test_backoff_curve(self):
        policy = ResiliencePolicy(
            backoff_base_s=0.1, backoff_max_s=0.5, backoff_jitter=0.0
        )
        waits = [policy.backoff_s(n, 0.0) for n in (1, 2, 3, 4, 5)]
        assert waits == [0.1, 0.2, 0.4, 0.5, 0.5]
        jittered = policy.backoff_s(1, 1.0)
        assert jittered == pytest.approx(0.1)  # jitter=0 ignores u
        spread = ResiliencePolicy(
            backoff_base_s=0.1, backoff_max_s=0.5, backoff_jitter=0.5
        )
        assert spread.backoff_s(1, 1.0) == pytest.approx(0.15)

    def test_config_type_checks(self, trained_3c):
        with pytest.raises(ConfigurationError):
            ServingConfig(
                model=trained_3c.cdln, resilience="nope"
            ).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(model=trained_3c.cdln, faults="nope").validate()

    def test_health_dict_round_trip(self, trained_3c):
        engine = _engine(trained_3c)
        health = engine.health()
        payload = health.as_dict()
        assert payload["live"] is True and payload["ready"] is True
        assert payload["queue_depth"] == 0
