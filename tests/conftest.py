"""Shared fixtures.

Heavy objects (datasets, trained networks) are session-scoped and built at
the *tiny* experiment scale so the whole suite stays fast while still
exercising the real training paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import make_dataset_pair
from repro.experiments.common import Scale, get_datasets, get_trained


@pytest.fixture(scope="session")
def tiny_scale() -> Scale:
    return Scale.tiny()


@pytest.fixture(scope="session")
def tiny_datasets():
    """A small deterministic train/test pair shared across the suite."""
    return make_dataset_pair(400, 200, rng=1234)


@pytest.fixture(scope="session")
def trained_3c(tiny_scale):
    """A trained MNIST_3C baseline+CDLN (paper taps, admission on)."""
    return get_trained("mnist_3c", tiny_scale, seed=7)


@pytest.fixture(scope="session")
def trained_3c_all_taps(tiny_scale):
    """MNIST_3C with taps at every pooling layer (no admission)."""
    return get_trained("mnist_3c", tiny_scale, seed=7, attach="all")


@pytest.fixture(scope="session")
def trained_2c(tiny_scale):
    """A trained MNIST_2C baseline+CDLN."""
    return get_trained("mnist_2c", tiny_scale, seed=7)


@pytest.fixture(scope="session")
def tiny_test_set(tiny_scale):
    return get_datasets(tiny_scale, seed=7)[1]


def numeric_gradient(fn, x: np.ndarray, eps: float | None = None) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``.

    The step size matches the array's precision: 1e-6 suits float64, but a
    float32 central difference needs a much larger step (1e-2) before the
    function-evaluation rounding noise (~1e-7 relative) stops dominating
    the quotient.
    """
    if eps is None:
        eps = 1e-6 if x.dtype == np.float64 else 1e-2
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.fixture
def gradcheck():
    return numeric_gradient
