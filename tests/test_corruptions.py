"""Tests for the severity-parameterized corruption transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corruptions import (
    CORRUPTIONS,
    apply_corruptions,
    corrupt_dataset,
    corruption_names,
    get_corruption,
    register_corruption,
)
from repro.data.dataset import DigitDataset
from repro.errors import ConfigurationError

PIXEL_CORRUPTIONS = corruption_names(labels=False)
LABEL_CORRUPTIONS = corruption_names(labels=True)


def make_images(n=12, size=12, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 1, size, size))


def make_dataset(n=40, size=12, seed=0) -> DigitDataset:
    rng = np.random.default_rng(seed)
    return DigitDataset(
        images=rng.random((n, 1, size, size)),
        labels=rng.integers(0, 10, size=n),
        difficulty=rng.random(n),
        name="toy",
    )


class TestRegistry:
    def test_expected_corruptions_registered(self):
        assert {"gaussian_noise", "impulse_noise", "blur", "occlusion",
                "contrast", "affine_jitter"} <= set(PIXEL_CORRUPTIONS)
        assert LABEL_CORRUPTIONS == ("label_noise",)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown corruption"):
            get_corruption("fog")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_corruption("gaussian_noise")(lambda *a: None)

    def test_label_kind_flag(self):
        assert get_corruption("label_noise").corrupts_labels
        assert not get_corruption("blur").corrupts_labels


class TestPixelCorruptions:
    @pytest.mark.parametrize("name", PIXEL_CORRUPTIONS)
    def test_severity_zero_is_identity(self, name):
        images = make_images()
        out = CORRUPTIONS[name].fn(images, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)
        assert out is not images  # fresh array, base untouched

    @pytest.mark.parametrize("name", PIXEL_CORRUPTIONS)
    def test_deterministic_given_seed(self, name):
        images = make_images()
        a = CORRUPTIONS[name].fn(images, 0.7, np.random.default_rng(42))
        b = CORRUPTIONS[name].fn(images, 0.7, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", PIXEL_CORRUPTIONS)
    def test_output_shape_and_range(self, name):
        images = make_images()
        out = CORRUPTIONS[name].fn(images, 1.0, np.random.default_rng(1))
        assert out.shape == images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("name", PIXEL_CORRUPTIONS)
    def test_distortion_grows_with_severity(self, name):
        images = make_images(n=24)
        mags = []
        for severity in (0.25, 0.5, 1.0):
            out = CORRUPTIONS[name].fn(images, severity, np.random.default_rng(3))
            mags.append(float(np.abs(out - images).mean()))
        assert mags[0] > 0.0
        assert mags[0] < mags[1] < mags[2]

    @pytest.mark.parametrize("name", PIXEL_CORRUPTIONS)
    def test_bad_severity_rejected(self, name):
        with pytest.raises(ConfigurationError, match="severity"):
            CORRUPTIONS[name].fn(make_images(2), 1.5, np.random.default_rng(0))

    def test_bad_image_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="images"):
            CORRUPTIONS["blur"].fn(np.zeros((4, 12, 12)), 0.5, np.random.default_rng(0))

    def test_occlusion_zeroes_a_patch(self):
        images = np.ones((3, 1, 12, 12))
        out = CORRUPTIONS["occlusion"].fn(images, 1.0, np.random.default_rng(0))
        for i in range(3):
            assert (out[i] == 0).sum() == 36  # 6x6 patch at severity 1

    def test_contrast_compresses_toward_mean(self):
        images = make_images()
        out = CORRUPTIONS["contrast"].fn(images, 1.0, np.random.default_rng(0))
        assert out.std() < images.std()


class TestLabelNoise:
    def test_severity_zero_is_identity(self):
        labels = np.arange(10, dtype=np.int64)
        out = CORRUPTIONS["label_noise"].fn(labels, 10, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, labels)

    def test_flips_change_class_and_stay_valid(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 10, size=2000)
        out = CORRUPTIONS["label_noise"].fn(labels, 10, 1.0, np.random.default_rng(1))
        flipped = out != labels
        # Severity 1 flips ~half the labels, always to a *different* class.
        assert 0.4 < flipped.mean() < 0.6
        assert out.min() >= 0 and out.max() < 10

    def test_empty_labels_ok(self):
        out = CORRUPTIONS["label_noise"].fn(
            np.empty(0, dtype=np.int64), 10, 0.8, np.random.default_rng(0)
        )
        assert out.shape == (0,)


class TestDatasetApplication:
    def test_corrupt_dataset_pixel(self):
        data = make_dataset()
        out = corrupt_dataset(data, "gaussian_noise", 0.6, rng=0)
        assert out.name == "toy+gaussian_noise@0.6"
        assert len(out) == len(data)
        np.testing.assert_array_equal(out.labels, data.labels)
        np.testing.assert_array_equal(out.difficulty, data.difficulty)
        assert not np.array_equal(out.images, data.images)
        np.testing.assert_array_equal(data.images, make_dataset().images)  # untouched

    def test_corrupt_dataset_labels(self):
        data = make_dataset(n=400)
        out = corrupt_dataset(data, "label_noise", 1.0, rng=0)
        np.testing.assert_array_equal(out.images, data.images)
        assert (out.labels != data.labels).any()

    def test_chain_is_deterministic_and_ordered(self):
        data = make_dataset()
        specs = [("blur", 0.5), ("gaussian_noise", 0.5)]
        a = apply_corruptions(data, specs, rng=7)
        b = apply_corruptions(data, specs, rng=7)
        np.testing.assert_array_equal(a.images, b.images)
        reversed_order = apply_corruptions(data, specs[::-1], rng=7)
        assert not np.array_equal(a.images, reversed_order.images)
        assert "blur" in a.name and "gaussian_noise" in a.name
