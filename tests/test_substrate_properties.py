"""Property-style tests for the PR-3 substrate: im2col/col2im ``out=``
round-trips and pooling forward/backward adjoints.

Each case draws a random geometry (odd spatial sizes, mixed strides,
kernels and padding) from a seeded generator and checks the algebraic
identities the layers rely on:

* ``im2col``/``col2im`` are exact adjoints: ``<im2col(x), y> == <x,
  col2im(y)>`` for every geometry, with and without caller-provided
  ``out=`` buffers;
* average pooling's forward map is linear and its backward is the exact
  adjoint; max pooling's backward routes gradient only to argmax
  positions and preserves mass.

Both compute dtypes are exercised; ~50 randomized cases per identity
family keep the odd-shape/stride/kernel space honestly covered.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.compute import Workspace
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.nn.tensor_ops import col2im, conv_output_size, im2col, sliding_windows

SEEDS = range(13)
DTYPES = (np.float32, np.float64)


def random_geometry(rng: np.random.Generator):
    """Random (n, c, h, w, kernel, stride, padding) with odd spatial sizes."""
    n = int(rng.integers(1, 4))
    c = int(rng.integers(1, 4))
    h = int(rng.choice([5, 7, 9, 11, 13]))
    w = int(rng.choice([5, 7, 9, 11, 13]))
    kernel = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 4))
    padding = int(rng.integers(0, 2))
    return n, c, h, w, kernel, stride, padding


def tolerance(dtype) -> float:
    return 1e-4 if dtype == np.float32 else 1e-10


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("seed", SEEDS)
class TestIm2colCol2im:
    def test_out_buffer_matches_fresh_allocation(self, seed, dtype):
        rng = np.random.default_rng(seed)
        n, c, h, w, kernel, stride, padding = random_geometry(rng)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        fresh = im2col(x, kernel, stride, padding)
        workspace = Workspace()
        buffer = workspace.request(fresh.shape, np.dtype(dtype))
        buffer.fill(np.nan)  # stale scratch must be fully overwritten
        reused = im2col(x, kernel, stride, padding, out=buffer)
        assert reused is buffer
        np.testing.assert_array_equal(reused, fresh)

        cols = rng.standard_normal(fresh.shape).astype(dtype)
        back_fresh = col2im(cols, x.shape, kernel, stride, padding)
        h_pad, w_pad = h + 2 * padding, w + 2 * padding
        canvas = workspace.request((n, c, h_pad, w_pad), np.dtype(dtype))
        canvas.fill(np.nan)
        back_reused = col2im(cols, x.shape, kernel, stride, padding, out=canvas)
        np.testing.assert_array_equal(back_reused, back_fresh)

    def test_gather_scatter_adjoint_identity(self, seed, dtype):
        """<im2col(x), y> == <x, col2im(y)>: the exact adjoint pair that
        makes col2im the correct convolution gradient routing."""
        rng = np.random.default_rng(1000 + seed)
        n, c, h, w, kernel, stride, padding = random_geometry(rng)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        cols = im2col(x, kernel, stride, padding)
        y = rng.standard_normal(cols.shape).astype(dtype)
        lhs = float(np.vdot(cols.astype(np.float64), y.astype(np.float64)))
        back = col2im(y, x.shape, kernel, stride, padding)
        rhs = float(np.vdot(x.astype(np.float64), back.astype(np.float64)))
        assert lhs == pytest.approx(rhs, rel=tolerance(dtype), abs=tolerance(dtype))

    def test_round_trip_recovers_multiplicity_weighted_input(self, seed, dtype):
        """col2im(im2col(x)) == x * (times each pixel appears in a window)."""
        rng = np.random.default_rng(2000 + seed)
        n, c, h, w, kernel, stride, padding = random_geometry(rng)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        counts = col2im(
            im2col(np.ones_like(x), kernel, stride, padding),
            x.shape, kernel, stride, padding,
        )
        back = col2im(
            im2col(x, kernel, stride, padding), x.shape, kernel, stride, padding
        )
        np.testing.assert_allclose(back, x * counts, atol=tolerance(dtype))
        if stride >= kernel and padding == 0:
            # Non-overlapping windows (the vectorized strided-view path):
            # every window-covered pixel appears exactly once.
            h_cov = kernel + stride * (conv_output_size(h, kernel, stride) - 1)
            w_cov = kernel + stride * (conv_output_size(w, kernel, stride) - 1)
            covered = counts[:, :, :h_cov, :w_cov]
            if stride == kernel:
                assert np.all(covered == 1.0)
            else:
                assert set(np.unique(covered)) <= {0.0, 1.0}


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("seed", SEEDS)
class TestPoolingAdjoints:
    def build_pool(self, cls, rng, c, h, w):
        window = int(rng.integers(1, 4))
        stride = int(rng.integers(window, 4))  # non-overlapping or matched
        pool = cls(window, stride=stride)
        pool.build((c, h, w), rng)
        return pool

    def test_avg_pool_backward_is_exact_adjoint(self, seed, dtype):
        """AvgPool forward is linear: <P x, g> == <x, P^T g> exactly."""
        rng = np.random.default_rng(3000 + seed)
        n, c, h, w, *_ = random_geometry(rng)
        pool = self.build_pool(AvgPool2D, rng, c, h, w)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        out = pool.forward(x, training=True)
        g = rng.standard_normal(out.shape).astype(dtype)
        dx = pool.backward(g)
        lhs = float(np.vdot(out.astype(np.float64), g.astype(np.float64)))
        rhs = float(np.vdot(x.astype(np.float64), dx.astype(np.float64)))
        assert lhs == pytest.approx(rhs, rel=tolerance(dtype), abs=tolerance(dtype))
        assert dx.shape == x.shape

    def test_avg_pool_forward_matches_naive_window_mean(self, seed, dtype):
        rng = np.random.default_rng(4000 + seed)
        n, c, h, w, *_ = random_geometry(rng)
        pool = self.build_pool(AvgPool2D, rng, c, h, w)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        out = pool.forward(x)
        naive = sliding_windows(x, pool.window, pool.stride).mean(axis=(-2, -1))
        np.testing.assert_allclose(out, naive, atol=tolerance(dtype))

    def test_max_pool_forward_inference_matches_training(self, seed, dtype):
        """The slice-accumulated inference max equals the argmax-tracking
        training forward for every geometry."""
        rng = np.random.default_rng(5000 + seed)
        n, c, h, w, *_ = random_geometry(rng)
        pool = self.build_pool(MaxPool2D, rng, c, h, w)
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        np.testing.assert_array_equal(
            pool.forward(x, training=False), pool.forward(x, training=True)
        )

    def test_max_pool_backward_routes_to_argmax_only(self, seed, dtype):
        rng = np.random.default_rng(6000 + seed)
        n, c, h, w, *_ = random_geometry(rng)
        pool = self.build_pool(MaxPool2D, rng, c, h, w)
        # Continuous draws: argmax ties have probability zero.
        x = rng.standard_normal((n, c, h, w)).astype(dtype)
        out = pool.forward(x, training=True)
        g = rng.standard_normal(out.shape).astype(dtype)
        dx = pool.backward(g)
        # Mass is preserved exactly (each window's gradient lands once)...
        mass_tol = 1e-3 if dtype == np.float32 else 1e-10
        assert float(dx.sum()) == pytest.approx(
            float(g.sum()), rel=tolerance(dtype), abs=mass_tol
        )
        # ...and only at positions that are some window's max (their input
        # value appears verbatim in the forward output).
        nonzero = np.argwhere(dx != 0)
        for ni, ci, hi, wi in nonzero[: min(len(nonzero), 16)]:
            assert np.any(out[ni, ci] == x[ni, ci, hi, wi])

    def test_backward_without_forward_rejected(self, seed, dtype):
        rng = np.random.default_rng(7000 + seed)
        _, c, h, w, *_ = random_geometry(rng)
        pool = self.build_pool(MaxPool2D, rng, c, h, w)
        with pytest.raises(ShapeError, match="backward"):
            pool.backward(np.zeros((1, *pool.output_shape), dtype=dtype))
