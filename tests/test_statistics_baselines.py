"""Tests for the evaluation aggregates and the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.dln import evaluate_dln
from repro.baselines.scalable_effort import ScalableEffortCascade
from repro.cdl.confidence import ActivationModule
from repro.cdl.statistics import evaluate_baseline_accuracy, evaluate_cdln
from repro.errors import ConfigurationError
from repro.nn import Adam, Dense, Flatten, Network, Trainer


class TestCdlEvaluation:
    def test_headline_numbers_consistent(self, trained_3c, tiny_test_set):
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        assert ev.ops_improvement == pytest.approx(1.0 / ev.normalized_ops)
        assert 0.0 <= ev.accuracy <= 1.0
        fractions = ev.stage_exit_fractions()
        assert fractions.sum() == pytest.approx(1.0)

    def test_energy_improvement_below_ops_improvement(
        self, trained_3c, tiny_test_set
    ):
        """The fixed per-input overhead must compress energy gains slightly
        below OPS gains, as the paper measures (1.91x -> 1.84x)."""
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        assert ev.energy_improvement < ev.ops_improvement

    def test_per_digit_arrays_shape(self, trained_3c, tiny_test_set):
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        assert ev.per_digit_ops_improvement().shape == (10,)
        assert ev.per_digit_energy_improvement().shape == (10,)
        assert ev.final_stage_fraction_per_digit().shape == (10,)

    def test_render_contains_stages(self, trained_3c, tiny_test_set):
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        text = ev.render()
        for name in trained_3c.cdln.stage_names:
            assert name in text

    def test_baseline_accuracy_matches_direct_prediction(
        self, trained_3c, tiny_test_set
    ):
        via_helper = evaluate_baseline_accuracy(trained_3c.cdln, tiny_test_set)
        direct = (
            trained_3c.baseline.predict_labels(tiny_test_set.images)
            == tiny_test_set.labels
        ).mean()
        assert via_helper == pytest.approx(float(direct))


class TestDlnBaseline:
    def test_evaluation_fields(self, trained_3c, tiny_test_set):
        ev = evaluate_dln(trained_3c.baseline, tiny_test_set)
        assert 0.0 <= ev.accuracy <= 1.0
        assert ev.ops_per_input > 0
        assert ev.energy_pj_per_input > 0
        assert ev.normalized_ops == 1.0
        assert ev.per_digit_accuracy.shape == (10,)


def _flat_model(dim, classes, rng):
    return Network(
        [Flatten(), Dense(classes, activation="softmax")],
        input_shape=(1, dim, dim),
        rng=rng,
    )


class TestScalableEffortCascade:
    def make_cascade(self, train_x, train_y):
        small = _flat_model(28, 10, 0)
        big = _flat_model(28, 10, 1)
        for model, epochs in ((small, 1), (big, 4)):
            Trainer(
                model, loss="softmax_cross_entropy", optimizer=Adam(0.01), rng=0
            ).fit(train_x, train_y, epochs=epochs)
        return ScalableEffortCascade(
            [small, big], ActivationModule(policy="max_probability")
        )

    def test_empty_cascade_raises(self):
        with pytest.raises(ConfigurationError):
            ScalableEffortCascade([])

    def test_stage_costs_cumulative(self, tiny_datasets):
        train, _ = tiny_datasets
        cascade = self.make_cascade(train.images, train.labels)
        costs = cascade.stage_costs()
        assert costs.shape == (2,)
        assert costs[1] > costs[0]

    def test_predict_covers_everything(self, tiny_datasets):
        train, test = tiny_datasets
        cascade = self.make_cascade(train.images, train.labels)
        labels, exits = cascade.predict(test.images, delta=0.7)
        assert (labels >= 0).all()
        assert set(np.unique(exits)) <= {0, 1}

    def test_last_stage_is_fallback(self, tiny_datasets):
        """With an impossible delta nothing exits early; the final model
        must still classify every input."""
        train, test = tiny_datasets
        cascade = self.make_cascade(train.images, train.labels)
        labels, exits = cascade.predict(test.images, delta=0.999999)
        assert (exits == 1).all()
        assert (labels >= 0).all()

    def test_evaluate(self, tiny_datasets):
        train, test = tiny_datasets
        cascade = self.make_cascade(train.images, train.labels)
        ev = cascade.evaluate(test, delta=0.7)
        assert 0.0 <= ev.accuracy <= 1.0
        assert ev.average_ops > 0
        assert ev.stage_exit_fractions.sum() == pytest.approx(1.0)
