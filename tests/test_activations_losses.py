"""Tests for activation functions and losses (values + analytic gradients)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.nn.activations import (
    Identity,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, get_loss

_ARRAYS = hnp.arrays(
    np.float64,
    hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(-10, 10),
)


class TestForwardValues:
    def test_identity(self):
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(Identity().forward(x), x)

    def test_sigmoid_range_and_midpoint(self):
        s = Sigmoid()
        assert s.forward(np.array(0.0)) == pytest.approx(0.5)
        out = s.forward(np.linspace(-50, 50, 101))
        assert out.min() >= 0 and out.max() <= 1

    def test_sigmoid_extreme_inputs_do_not_overflow(self):
        out = Sigmoid().forward(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))

    def test_tanh(self):
        np.testing.assert_allclose(
            Tanh().forward(np.array([0.0, 1.0])), [0.0, np.tanh(1.0)]
        )

    def test_relu(self):
        np.testing.assert_array_equal(
            ReLU().forward(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_shift_invariance(self):
        s = Softmax()
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(s.forward(x), s.forward(x + 1000.0))

    @settings(max_examples=25, deadline=None)
    @given(_ARRAYS)
    def test_softmax_is_a_distribution(self, x):
        out = Softmax().forward(x)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestBackwardGradients:
    @pytest.mark.parametrize(
        "activation", [Identity(), Sigmoid(), Tanh(), ReLU(), Softmax()]
    )
    def test_matches_numeric_gradient(self, activation, gradcheck):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        # Nudge away from ReLU's kink to keep the numeric check valid.
        x[np.abs(x) < 1e-3] = 0.1
        upstream = rng.normal(size=(3, 4))
        out = activation.forward(x)
        analytic = activation.backward(upstream, out)
        numeric = gradcheck(lambda: float(np.sum(activation.forward(x) * upstream)), x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_activation("sigmoid"), Sigmoid)

    def test_instance_passthrough(self):
        inst = ReLU()
        assert get_activation(inst) is inst

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_activation("swish")

    def test_equality_by_type(self):
        assert Sigmoid() == Sigmoid()
        assert Sigmoid() != Tanh()


class TestMeanSquaredError:
    def test_zero_loss_on_perfect_prediction(self):
        loss = MeanSquaredError()
        out = np.eye(3)
        assert loss.value(out, np.arange(3)) == pytest.approx(0.0)

    def test_known_value(self):
        loss = MeanSquaredError()
        out = np.array([[0.5, 0.5]])
        # targets one-hot [1, 0]: 0.5*(0.25+0.25)/1
        assert loss.value(out, np.array([0])) == pytest.approx(0.25)

    def test_gradient_matches_numeric(self, gradcheck):
        loss = MeanSquaredError()
        rng = np.random.default_rng(1)
        out = rng.random((4, 5))
        labels = np.array([0, 1, 2, 3])
        analytic = loss.gradient(out, labels)
        numeric = gradcheck(lambda: loss.value(out, labels), out)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_accepts_one_hot_targets(self):
        loss = MeanSquaredError()
        out = np.array([[0.2, 0.8]])
        t = np.array([[0.0, 1.0]])
        assert loss.value(out, t) == pytest.approx(0.5 * (0.04 + 0.04))


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        out = np.array([[1.0 - 1e-9, 1e-9]])
        assert loss.value(out, np.array([0])) < 1e-6

    def test_uniform_prediction_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        out = np.full((1, 4), 0.25)
        assert loss.value(out, np.array([2])) == pytest.approx(np.log(4))

    def test_fused_gradient(self):
        loss = SoftmaxCrossEntropy()
        out = np.array([[0.7, 0.3]])
        grad = loss.gradient(out, np.array([0]))
        np.testing.assert_allclose(grad, [[-0.3, 0.3]])

    def test_bad_epsilon_raises(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy(epsilon=0.0)

    def test_registry(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("softmax_cross_entropy"), SoftmaxCrossEntropy)
        with pytest.raises(ConfigurationError):
            get_loss("hinge")
