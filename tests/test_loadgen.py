"""Load generator: schedules, virtual-time SLO reports, shedding, config.

The contracts pinned here are the ones the gated benchmarks and docs
lean on: seeded schedules materialize identically, the simulated runner
is fully deterministic (same seed + schedule => the same SLOReport),
shed requests exit at stage 0 and are never dropped, the shed fraction
reconciles exactly between the report / the engine metrics / the span
trace, and deadline expiry marks answers without suppressing them.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import FrozenInstanceError

import numpy as np
import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.obs import Observer, read_spans, reconcile_shed
from repro.serving import (
    ArrivalSchedule,
    InferenceEngine,
    LoadRunner,
    MicroBatchPolicy,
    ServingConfig,
    ShedPolicy,
    SLOReport,
)
from repro.serving.schedule import Arrival
from repro.serving.slo import RequestOutcome

CAPACITY = 3e7
SLO = 0.25


def make_engine(trained, **overrides):
    return InferenceEngine.from_config(
        ServingConfig(model=trained.cdln, **overrides)
    )


class TestArrivalSchedule:
    def test_poisson_deterministic_and_rate(self):
        sched = ArrivalSchedule.poisson(rate_rps=300, duration_s=4, seed=11)
        a1, a2 = sched.materialize(), sched.materialize()
        assert a1 == a2
        # Poisson(rate*T) count: 1200 expected, 5 sigma ~ 173.
        assert 1000 < len(a1) < 1400
        assert all(0 <= a.t < 4 for a in a1)
        assert [a.t for a in a1] == sorted(a.t for a in a1)

    def test_different_seeds_differ(self):
        base = dict(rate_rps=100, duration_s=2)
        a = ArrivalSchedule.poisson(seed=1, **base).materialize()
        b = ArrivalSchedule.poisson(seed=2, **base).materialize()
        assert a != b

    def test_bursty_rate_shape(self):
        sched = ArrivalSchedule.bursty(
            rate_rps=100, burst_factor=4, burst_start_s=1, burst_duration_s=1,
            duration_s=3, seed=0,
        )
        assert sched.rate_at(0.5) == 100
        assert sched.rate_at(1.5) == 400
        assert sched.rate_at(2.5) == 100
        arrivals = sched.materialize()
        in_burst = sum(1 for a in arrivals if 1 <= a.t < 2)
        outside = len(arrivals) - in_burst
        # ~400 in the burst second vs ~200 across the two calm seconds.
        assert in_burst > outside

    def test_diurnal_rate_shape(self):
        sched = ArrivalSchedule.diurnal(
            rate_rps=50, peak_rate_rps=250, period_s=10, duration_s=10, seed=0
        )
        assert sched.rate_at(0.0) == pytest.approx(50)
        assert sched.rate_at(5.0) == pytest.approx(250)
        assert sched.peak_rate() == 250

    def test_scenario_and_priority_mix(self):
        sched = ArrivalSchedule.poisson(
            rate_rps=500, duration_s=2, seed=5,
            scenario_mix={"fog": 1.0, None: 1.0},
            priority_mix={0: 3.0, 1: 1.0},
            deadline_s=0.5,
        )
        arrivals = sched.materialize()
        fog = sum(1 for a in arrivals if a.scenario == "fog")
        high = sum(1 for a in arrivals if a.priority == 1)
        assert 0 < fog < len(arrivals)
        assert 0 < high < len(arrivals)
        assert abs(fog / len(arrivals) - 0.5) < 0.1
        assert all(a.deadline_s == 0.5 for a in arrivals)

    def test_jsonl_round_trip(self, tmp_path):
        sched = ArrivalSchedule.poisson(
            rate_rps=200, duration_s=1, seed=9, scenario_mix={"noise": 1.0}
        )
        path = sched.save_jsonl(tmp_path / "trace.jsonl")
        replay = ArrivalSchedule.from_jsonl(path)
        assert replay.kind == "replay"
        assert replay.materialize() == sched.materialize()

    def test_from_jsonl_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(SerializationError):
            ArrivalSchedule.from_jsonl(path)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(rate_rps=0, duration_s=1)
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(rate_rps=10, duration_s=-1)
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.bursty(
                rate_rps=10, burst_factor=0.5, burst_start_s=0,
                burst_duration_s=1, duration_s=2,
            )
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.diurnal(
                rate_rps=100, peak_rate_rps=50, period_s=10, duration_s=10
            )
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.replay([])
        with pytest.raises(ConfigurationError):
            Arrival(t=-1.0)
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.poisson(
                rate_rps=10, duration_s=1, scenario_mix={"fog": -1.0}
            )


class TestShedPolicy:
    def test_needs_a_trigger(self):
        with pytest.raises(ConfigurationError):
            ShedPolicy()

    def test_depth_trigger(self):
        policy = ShedPolicy(max_queue_depth=10)
        assert not policy.should_shed(queue_depth=10)
        assert policy.should_shed(queue_depth=11)

    def test_predicted_wait_trigger(self):
        policy = ShedPolicy(max_predicted_wait_s=0.1)
        assert not policy.should_shed(queue_depth=5, predicted_wait_s=None)
        assert not policy.should_shed(queue_depth=5, predicted_wait_s=0.05)
        assert policy.should_shed(queue_depth=5, predicted_wait_s=0.2)


class TestSLOReport:
    @staticmethod
    def outcome(i, latency, *, shed=False, deadline_s=None, met=True):
        return RequestOutcome(
            request_id=i, arrival_s=float(i), queue_wait_s=0.0,
            latency_s=latency, exit_stage=0, ops=100.0, energy_pj=50.0,
            shed=shed, deadline_s=deadline_s, deadline_met=met,
        )

    def test_quantiles_are_observed_samples(self):
        outcomes = [self.outcome(i, (i + 1) / 100) for i in range(100)]
        report = SLOReport.from_outcomes(outcomes, slo_p99_s=1.0)
        # method="higher": always an observed sample, rounded up.
        assert report.latency_p50_s == 0.51
        assert report.latency_p99_s == 1.00
        assert report.latency_p999_s == 1.00
        assert report.slo_met
        assert report.throughput_at_slo_rps == report.achieved_rps > 0

    def test_violated_slo_zeroes_throughput(self):
        outcomes = [self.outcome(i, 2.0) for i in range(10)]
        report = SLOReport.from_outcomes(outcomes, slo_p99_s=1.0)
        assert not report.slo_met
        assert report.throughput_at_slo_rps == 0.0

    def test_goodput_and_shed_accounting(self):
        outcomes = [
            self.outcome(i, 0.1, shed=(i < 3), deadline_s=0.5, met=(i < 8))
            for i in range(10)
        ]
        report = SLOReport.from_outcomes(outcomes, slo_p99_s=1.0)
        assert report.shed_count == 3
        assert report.shed_fraction == pytest.approx(0.3)
        assert report.deadline_missed == 2
        assert report.goodput_fraction == pytest.approx(0.8)

    def test_dropped_is_scheduled_minus_answered(self):
        outcomes = [self.outcome(i, 0.1) for i in range(8)]
        report = SLOReport.from_outcomes(outcomes, slo_p99_s=1.0, requests=10)
        assert report.dropped == 2
        with pytest.raises(ConfigurationError):
            SLOReport.from_outcomes(outcomes, slo_p99_s=1.0, requests=5)

    def test_json_round_trip(self, tmp_path):
        outcomes = [self.outcome(i, 0.1) for i in range(5)]
        report = SLOReport.from_outcomes(
            outcomes, slo_p99_s=1.0, queue_depth_timeline=[(0.0, 3), (1.0, 5)]
        )
        path = report.save(tmp_path / "report.json")
        loaded = SLOReport.from_json(path.read_text())
        assert loaded == report
        assert loaded.max_queue_depth == 5
        with pytest.raises(SerializationError):
            SLOReport.from_json("{\"schema\": \"wrong\"}")

    def test_render_mentions_the_headline(self):
        outcomes = [self.outcome(i, 0.1) for i in range(5)]
        text = SLOReport.from_outcomes(outcomes, slo_p99_s=1.0).render()
        assert "throughput @ SLO" in text
        assert "goodput" in text


class TestLoadRunnerSimulate:
    @pytest.fixture(scope="class")
    def burst_schedule(self):
        return ArrivalSchedule.bursty(
            rate_rps=150, burst_factor=4, burst_start_s=1.0,
            burst_duration_s=1.0, duration_s=3, seed=3, deadline_s=SLO,
        )

    def test_determinism(self, trained_3c, tiny_test_set, burst_schedule):
        reports = []
        for _ in range(2):
            engine = make_engine(
                trained_3c, shed=ShedPolicy(max_queue_depth=32)
            )
            runner = LoadRunner(engine, burst_schedule, tiny_test_set.images)
            reports.append(
                runner.simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
            )
        assert reports[0] == reports[1]

    def test_shed_requests_exit_stage0_none_dropped(
        self, trained_3c, tiny_test_set, burst_schedule, tmp_path
    ):
        with Observer.to_directory(tmp_path, meta={"test": "shed"}) as obs:
            engine = make_engine(
                trained_3c,
                shed=ShedPolicy(max_queue_depth=32),
                observer=obs,
            )
            runner = LoadRunner(engine, burst_schedule, tiny_test_set.images)
            report = runner.simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
        assert report.dropped == 0
        assert report.shed_count > 0
        # Every shed outcome exits at stage 0 (spans agree below).
        snap = engine.metrics.snapshot()
        assert snap.shed_requests == report.shed_count
        assert snap.requests == report.answered
        # Exact reconciliation against the trace.
        spans = read_spans(tmp_path / "trace.jsonl")
        shed_in_trace, span_count = reconcile_shed(spans)
        assert span_count == report.answered
        assert shed_in_trace == report.shed_count
        assert all(
            s["exit_stage"] == 0 for s in spans if s.get("shed")
        )

    def test_shedding_tames_the_tail(
        self, trained_3c, tiny_test_set, burst_schedule
    ):
        unprotected = make_engine(trained_3c)
        no_shed = LoadRunner(
            unprotected, burst_schedule, tiny_test_set.images
        ).simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
        protected = make_engine(
            trained_3c, shed=ShedPolicy(max_queue_depth=32)
        )
        with_shed = LoadRunner(
            protected, burst_schedule, tiny_test_set.images
        ).simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
        assert not no_shed.slo_met
        assert with_shed.slo_met
        assert with_shed.latency_p99_s < no_shed.latency_p99_s
        assert with_shed.dropped == no_shed.dropped == 0

    def test_deadline_expiry_marks_but_delivers(
        self, trained_3c, tiny_test_set
    ):
        # A deadline far tighter than the service time: everything is
        # still answered, everything is marked missed.
        sched = ArrivalSchedule.poisson(
            rate_rps=200, duration_s=1, seed=4, deadline_s=1e-6
        )
        engine = make_engine(trained_3c)
        report = LoadRunner(engine, sched, tiny_test_set.images).simulate(
            ops_per_second=CAPACITY, slo_p99_s=SLO
        )
        assert report.dropped == 0
        assert report.deadline_missed == report.answered
        assert report.goodput_rps == 0.0

    def test_priority_boards_first_under_backlog(
        self, trained_3c, tiny_test_set
    ):
        # All arrivals land at t=0 with a tiny batch size: the high
        # priority request must board the first dispatched batch despite
        # arriving last in FIFO order.
        arrivals = [Arrival(t=0.0) for _ in range(8)]
        arrivals.append(Arrival(t=0.0, priority=5))
        sched = ArrivalSchedule.replay(arrivals)
        engine = make_engine(
            trained_3c, policy=MicroBatchPolicy(max_batch_size=4)
        )
        runner = LoadRunner(engine, sched, tiny_test_set.images)
        report = runner.simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
        assert report.answered == 9
        high = [o for o in runner.last_outcomes if o.priority == 5]
        assert len(high) == 1
        fastest = min(o.latency_s for o in runner.last_outcomes)
        assert high[0].latency_s == fastest

    def test_scenario_pools_route_payloads(self, trained_3c, tiny_test_set):
        sched = ArrivalSchedule.poisson(
            rate_rps=100, duration_s=1, seed=6, scenario_mix={"dark": 1.0}
        )
        dark = np.clip(tiny_test_set.images * 0.2, 0.0, 1.0)
        engine = make_engine(trained_3c)
        runner = LoadRunner(
            engine, sched, tiny_test_set.images,
            scenario_pools={"dark": dark},
        )
        report = runner.simulate(ops_per_second=CAPACITY, slo_p99_s=SLO)
        assert report.answered == report.requests
        assert all(o.scenario == "dark" for o in runner.last_outcomes)

    def test_rejects_bad_inputs(self, trained_3c, tiny_test_set):
        sched = ArrivalSchedule.poisson(rate_rps=10, duration_s=1, seed=0)
        engine = make_engine(trained_3c)
        with pytest.raises(ConfigurationError):
            LoadRunner(engine, sched, tiny_test_set.images[:0])
        runner = LoadRunner(engine, sched, tiny_test_set.images)
        with pytest.raises(ConfigurationError):
            runner.simulate(ops_per_second=0, slo_p99_s=SLO)
        with pytest.raises(ConfigurationError):
            runner.simulate(ops_per_second=CAPACITY, slo_p99_s=0)


class TestLoadRunnerRealTime:
    def test_wall_clock_run_answers_everything(
        self, trained_3c, tiny_test_set
    ):
        sched = ArrivalSchedule.poisson(
            rate_rps=400, duration_s=0.5, seed=8, deadline_s=5.0
        )
        engine = make_engine(trained_3c)
        runner = LoadRunner(engine, sched, tiny_test_set.images)
        report = runner.run(slo_p99_s=5.0, result_timeout_s=30.0)
        assert report.dropped == 0
        assert report.answered == report.requests
        assert report.goodput_fraction == 1.0
        assert report.latency_p99_s < 5.0


class TestLoadgenCLI:
    def test_plan_subcommand(self, capsys):
        from repro.serving.loadgen import main

        assert main([
            "plan", "--schedule", "poisson", "--rate", "50",
            "--duration", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "materialized arrivals" in out

    def test_plan_rejects_incomplete_diurnal(self, capsys):
        from repro.serving.loadgen import main

        assert main(["plan", "--schedule", "diurnal", "--rate", "50"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_subcommand_reports_slo_and_goodput(self, capsys, tmp_path):
        from repro.serving.loadgen import main
        from repro.serving.slo import SLOReport

        out_json = tmp_path / "slo.json"
        assert main([
            "run", "--schedule", "poisson", "--rate", "80",
            "--duration", "1", "--deadline", "0.5", "--slo-p99", "0.5",
            "--shed-depth", "64", "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput @ SLO" in out
        assert "goodput" in out
        report = SLOReport.from_json(out_json.read_text())
        assert report.dropped == 0
        assert report.requests == report.answered


class TestServingConfig:
    def test_from_config_and_validation(self, trained_3c):
        cfg = ServingConfig(model=trained_3c.cdln, delta=0.6)
        engine = InferenceEngine.from_config(cfg)
        assert engine.delta == 0.6
        assert engine.config.model is trained_3c.cdln

    def test_model_xor_registry(self, trained_3c):
        with pytest.raises(ConfigurationError):
            ServingConfig().validate()
        with pytest.raises(ConfigurationError):
            from repro.serving import ModelRegistry

            registry = ModelRegistry()
            registry.register("m", trained_3c)
            ServingConfig(model=trained_3c.cdln, registry=registry).validate()

    def test_type_checks(self, trained_3c):
        with pytest.raises(ConfigurationError):
            ServingConfig(model=trained_3c.cdln, policy=object()).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(model=trained_3c.cdln, shed=object()).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(model=trained_3c.cdln, delta=1.5).validate()

    def test_adaptive_needs_soft_controller(self, trained_3c):
        with pytest.raises(ConfigurationError) as err:
            ServingConfig(model=trained_3c.cdln, adaptive=object()).validate()
        assert "target_mean_ops" in str(err.value)

    def test_config_is_frozen_but_updatable(self, trained_3c):
        cfg = ServingConfig(model=trained_3c.cdln, delta=0.5)
        with pytest.raises(FrozenInstanceError):
            cfg.delta = 0.9
        updated = cfg.with_updates(delta=0.9)
        assert updated.delta == 0.9 and cfg.delta == 0.5

    def test_legacy_kwargs_warn_once_and_still_work(self, trained_3c):
        with pytest.warns(DeprecationWarning, match="ServingConfig"):
            engine = InferenceEngine(trained_3c.cdln, delta=0.6)
        assert engine.delta == 0.6

    def test_bare_model_is_silent_sugar(self, trained_3c):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = InferenceEngine(trained_3c.cdln)
        assert engine.config.model is trained_3c.cdln

    def test_config_plus_knobs_rejected(self, trained_3c):
        cfg = ServingConfig(model=trained_3c.cdln)
        with pytest.raises(ConfigurationError):
            InferenceEngine(config=cfg, delta=0.5)
        with pytest.raises(ConfigurationError):
            InferenceEngine(trained_3c.cdln, config=cfg)


class TestPublicSurface:
    def test_serving_all_is_pinned(self):
        import repro.serving as serving

        expected = {
            "AdaptiveDeltaPolicy", "Arrival", "ArrivalSchedule",
            "AsyncEngine", "AsyncInferenceEngine", "CalibrationPoint",
            "CascadeResult", "CascadeStageRecord", "DeltaCalibration",
            "DeltaController", "DriftDetector", "DriftEvent",
            "FabricConfig", "FaultInjector", "FaultPlan", "FaultSpec",
            "FleetSnapshot", "HealthStatus",
            "InferenceEngine", "InferenceResponse", "InjectedFault",
            "LearningDeltaPolicy", "LoadRunner", "MetricsSnapshot",
            "MicroBatchPolicy", "MiniCalibration", "MiniCalibrator",
            "ModelEntry", "ModelRegistry", "OperatingPoint",
            "OperatingTable", "RegimeEntry", "RegimeSignature",
            "RequestFailed", "RequestOutcome", "ResiliencePolicy",
            "RetargetEvent", "STAGE0_QUANTILE_GRID", "SLOReport",
            "ServingConfig", "ServingFabric", "ServingMetrics",
            "SharedParams", "ShedPolicy", "Ticket",
            "execute_cascade", "fold_exit_fractions",
            "population_stability_index", "robust_slope",
            "signature_distance", "simulate_exit_stages",
        }
        assert set(serving.__all__) == expected
        assert set(serving.__all__) <= set(dir(serving))
        # Every export resolves.
        for name in serving.__all__:
            assert getattr(serving, name) is not None

    def test_unknown_attribute_raises(self):
        import repro.serving as serving

        with pytest.raises(AttributeError):
            serving.NotAThing

    def test_microbatcher_deprecated_but_resolvable(self):
        import repro.serving as serving

        assert "MicroBatcher" not in serving.__all__
        assert "MicroBatcher" not in dir(serving)
        with pytest.warns(DeprecationWarning, match="MicroBatcher"):
            cls = serving.MicroBatcher
        from repro.serving.batching import MicroBatcher

        assert cls is MicroBatcher
