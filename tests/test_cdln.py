"""Tests for the CDLN cascade: construction, training, conditional
inference, cost tables, and agreement between the batched and the
single-instance (Algorithm 2) paths."""

import numpy as np
import pytest

from repro.cdl.architectures import mnist_3c
from repro.cdl.inference import classify_instance
from repro.cdl.linear_classifier import LinearClassifier
from repro.cdl.network import CDLN
from repro.cdl.stages import Stage
from repro.errors import ConfigurationError, NotFittedError, ShapeError


class TestStage:
    def test_final_stage_shape(self):
        stage = Stage(name="FC", is_final=True)
        assert stage.classifier is None

    def test_final_stage_rejects_classifier(self):
        with pytest.raises(ConfigurationError):
            Stage(name="FC", is_final=True, attach_index=1)

    def test_linear_stage_requires_classifier(self):
        with pytest.raises(ConfigurationError):
            Stage(name="O1", attach_index=1)

    def test_linear_stage_requires_attach(self):
        with pytest.raises(ConfigurationError):
            Stage(name="O1", classifier=LinearClassifier(10))


class TestConstruction:
    def test_stage_names_default(self):
        net, _ = mnist_3c(rng=0)
        cdln = CDLN(net, (1, 3))
        assert cdln.stage_names == ("O1", "O2", "FC")

    def test_custom_names(self):
        net, _ = mnist_3c(rng=0)
        cdln = CDLN(net, (1,), stage_names=["early"])
        assert cdln.stage_names == ("early", "FC")

    def test_names_must_align(self):
        net, _ = mnist_3c(rng=0)
        with pytest.raises(ConfigurationError):
            CDLN(net, (1, 3), stage_names=["O1"])

    def test_attach_must_be_increasing(self):
        net, _ = mnist_3c(rng=0)
        with pytest.raises(ConfigurationError):
            CDLN(net, (3, 1))
        with pytest.raises(ConfigurationError):
            CDLN(net, (1, 1))

    def test_attach_cannot_hit_head(self):
        net, _ = mnist_3c(rng=0)
        with pytest.raises(ConfigurationError):
            CDLN(net, (len(net.layers) - 1,))

    def test_unfitted_predict_raises(self, tiny_datasets):
        net, _ = mnist_3c(rng=0)
        cdln = CDLN(net, (1,))
        with pytest.raises(NotFittedError):
            cdln.predict(tiny_datasets[1].images[:4])


class TestFeatureExtraction:
    def test_feature_dims_match_table2(self, trained_3c):
        """O1 sees P1's 3x13x13=507 features; O2 sees P2's 6x5x5=150."""
        cdln = trained_3c.cdln
        for stage in cdln.linear_stages:
            if stage.name == "O1":
                assert stage.classifier.input_dim == 507
            if stage.name == "O2":
                assert stage.classifier.input_dim == 150

    def test_extract_features_chunking_consistent(self, trained_3c, tiny_test_set):
        cdln = trained_3c.cdln
        images = tiny_test_set.images[:32]
        small = cdln.extract_features(images, batch_size=7)
        big = cdln.extract_features(images, batch_size=512)
        for key in small:
            np.testing.assert_allclose(small[key], big[key])


class TestCostTable:
    def test_exit_costs_increase_with_depth(self, trained_3c):
        totals = trained_3c.cdln.path_cost_table().exit_totals()
        assert all(b >= a for a, b in zip(totals, totals[1:]))

    def test_first_exit_cheaper_than_baseline(self, trained_3c):
        table = trained_3c.cdln.path_cost_table()
        assert table.exit_totals()[0] < table.baseline_cost.total

    def test_final_exit_costlier_than_baseline(self, trained_3c):
        """The deepest path pays the whole backbone plus every LC."""
        table = trained_3c.cdln.path_cost_table()
        assert table.exit_totals()[-1] > table.baseline_cost.total


class TestConditionalInference:
    def test_all_inputs_get_labels(self, trained_3c, tiny_test_set):
        result = trained_3c.cdln.predict(tiny_test_set.images, delta=0.6)
        assert (result.labels >= 0).all()
        assert (result.exit_stages >= 0).all()
        assert result.labels.shape == (len(tiny_test_set),)

    def test_chunked_predict_matches(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:50]
        a = trained_3c.cdln.predict(images, delta=0.6, batch_size=7)
        b = trained_3c.cdln.predict(images, delta=0.6, batch_size=512)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.exit_stages, b.exit_stages)

    def test_delta_extremes_route_differently(self, trained_3c, tiny_test_set):
        """Under the two-criterion rule both extremes forward more than a
        moderate delta: near 0 everything looks ambiguous (many labels clear
        the bar), near 1 nothing looks confident (no label clears it)."""
        cdln = trained_3c.cdln
        moderate = (cdln.predict(tiny_test_set.images, delta=0.6).exit_stages == 0).mean()
        lenient = (cdln.predict(tiny_test_set.images, delta=0.02).exit_stages == 0).mean()
        strict = (cdln.predict(tiny_test_set.images, delta=0.995).exit_stages == 0).mean()
        assert moderate > strict
        assert moderate > lenient

    def test_some_early_exits_at_default_delta(self, trained_3c, tiny_test_set):
        result = trained_3c.cdln.predict(tiny_test_set.images, delta=0.6)
        assert (result.exit_stages == 0).any()

    def test_agrees_with_algorithm2_trace(self, trained_3c, tiny_test_set):
        """The batched production path and the literal Algorithm 2
        transcription must make identical decisions."""
        cdln = trained_3c.cdln
        images = tiny_test_set.images[:40]
        batched = cdln.predict(images, delta=0.6)
        for i in range(len(images)):
            trace = classify_instance(cdln, images[i], delta=0.6)
            assert trace.label == batched.labels[i]
            assert trace.exit_stage == batched.exit_stages[i]

    def test_trace_structure(self, trained_3c, tiny_test_set):
        trace = classify_instance(trained_3c.cdln, tiny_test_set.images[0], delta=0.6)
        assert trace.stages_executed == trace.exit_stage + 1
        assert trace.decisions[-1].terminated
        for decision in trace.decisions[:-1]:
            assert not decision.terminated

    def test_trace_rejects_bad_shape(self, trained_3c):
        with pytest.raises(ShapeError):
            classify_instance(trained_3c.cdln, np.zeros((2, 1, 28, 28)))

    def test_ops_profile_round_trip(self, trained_3c, tiny_test_set):
        result = trained_3c.cdln.predict(tiny_test_set.images, delta=0.6)
        profile = result.ops_profile(tiny_test_set.labels)
        assert profile.average_ops > 0
        assert profile.average_ops <= result.costs.exit_totals()[-1]


class TestCloneAndDrop:
    def test_clone_preserves_training(self, trained_3c, tiny_test_set):
        cdln = trained_3c.cdln
        clone = cdln.clone_with_stages([s.name for s in cdln.linear_stages])
        a = cdln.predict(tiny_test_set.images[:20], delta=0.6)
        b = clone.predict(tiny_test_set.images[:20], delta=0.6)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_clone_subset_skips_stage(self, trained_3c, tiny_test_set):
        cdln = trained_3c.cdln
        first = cdln.linear_stages[0].name
        clone = cdln.clone_with_stages([first])
        assert clone.stage_names == (first, "FC")
        # The original is untouched.
        assert len(cdln.linear_stages) >= 1

    def test_clone_empty_is_pure_baseline(self, trained_3c, tiny_test_set):
        clone = trained_3c.cdln.clone_with_stages([])
        result = clone.predict(tiny_test_set.images[:10], delta=0.6)
        assert (result.exit_stages == 0).all()  # only the FC stage exists
        np.testing.assert_array_equal(
            result.labels,
            trained_3c.baseline.predict_labels(tiny_test_set.images[:10]),
        )

    def test_clone_unknown_name_raises(self, trained_3c):
        with pytest.raises(ConfigurationError):
            trained_3c.cdln.clone_with_stages(["nope"])

    def test_drop_unknown_raises(self, trained_3c):
        with pytest.raises(ConfigurationError):
            trained_3c.cdln.clone_with_stages(
                [s.name for s in trained_3c.cdln.linear_stages]
            ).drop_stage("nope")


class TestTrainOnPassed:
    def test_passed_mode_trains(self, tiny_datasets):
        train, test = tiny_datasets
        net, spec = mnist_3c(rng=0)
        # Light training so features are non-degenerate.
        from repro.nn import Adam, Trainer

        Trainer(net, loss="softmax_cross_entropy", optimizer=Adam(0.005), rng=1).fit(
            train.images, train.labels, epochs=1
        )
        cdln = CDLN(net, spec.attach_indices)
        cdln.fit_linear_classifiers(
            train.images, train.labels, train_on="passed", delta=0.6
        )
        result = cdln.predict(test.images, delta=0.6)
        assert (result.labels >= 0).all()

    def test_bad_train_on_raises(self, tiny_datasets):
        train, _ = tiny_datasets
        net, spec = mnist_3c(rng=0)
        cdln = CDLN(net, spec.attach_indices)
        with pytest.raises(ConfigurationError):
            cdln.fit_linear_classifiers(train.images, train.labels, train_on="some")
