"""Tests for tools/check_docs.py and the docs/ tree's static health.

The slow half of the checker (executing every snippet) runs as a
dedicated CI step; tier-1 keeps the fast guarantees: the extraction and
link rules are correct, the real docs' links resolve, and every doc
page actually contains runnable snippets for CI to execute.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestExtraction:
    def test_python_blocks_only(self):
        text = (
            "intro\n"
            "```python\nx = 1\n```\n"
            "```bash\necho no\n```\n"
            "```python no-run\nraise RuntimeError\n```\n"
            "```python\ny = x + 1\n```\n"
        )
        blocks = check_docs.extract_python_blocks(text)
        assert [src for _, src in blocks] == ["x = 1\n", "y = x + 1\n"]
        # Line numbers point at the code body (1-based).
        assert [line for line, _ in blocks] == [3, 12]

    def test_relative_links(self):
        text = (
            "[a](docs/serving.md) [b](https://example.com/x) "
            "[c](#anchor) [d](scenarios.md#drift) ![img](fig.png) "
            "[e](mailto:x@y.z)"
        )
        assert check_docs.extract_relative_links(text) == [
            "docs/serving.md",
            "scenarios.md",
            "fig.png",
        ]

    def test_snippets_run_cumulatively(self, tmp_path):
        page = tmp_path / "docs" / "page.md"
        page.parent.mkdir()
        page.write_text("```python\nvalue = 21\n```\n```python\nassert value * 2 == 42\n```\n")
        assert check_docs.run_snippets(page, tmp_path) == []

    def test_snippet_failure_reports_file_and_line(self, tmp_path):
        page = tmp_path / "bad.md"
        page.write_text("ok\n\n```python\nboom()\n```\n")
        errors = check_docs.run_snippets(page, tmp_path)
        assert len(errors) == 1
        assert "bad.md:4" in errors[0]
        assert "NameError" in errors[0]

    def test_broken_link_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[gone](missing.md)")
        errors = check_docs.check_links(page, tmp_path)
        assert errors and "missing.md" in errors[0]


class TestRepositoryDocs:
    def test_expected_pages_exist(self):
        names = {p.name for p in check_docs.documentation_files(REPO_ROOT)}
        assert {
            "README.md",
            "architecture.md",
            "serving.md",
            "scenarios.md",
            "benchmarking.md",
        } <= names

    def test_all_intra_repo_links_resolve(self):
        errors = []
        for path in check_docs.documentation_files(REPO_ROOT):
            errors.extend(check_docs.check_links(path, REPO_ROOT))
        assert errors == []

    @pytest.mark.parametrize(
        "name", ["architecture.md", "serving.md", "scenarios.md", "benchmarking.md"]
    )
    def test_each_doc_page_has_runnable_snippets(self, name):
        text = (REPO_ROOT / "docs" / name).read_text()
        assert check_docs.extract_python_blocks(text) or "```bash" in text

    def test_links_only_cli(self, capsys):
        assert check_docs.main(["--links-only", "--root", str(REPO_ROOT)]) == 0
        assert "docs OK" in capsys.readouterr().out
