"""Tests for metrics, initializers, and model checkpointing."""

import numpy as np
import pytest

from repro.errors import SerializationError, ShapeError, ConfigurationError
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Network,
    accuracy,
    confusion_matrix,
    get_initializer,
    load_network,
    per_class_accuracy,
    save_network,
    topk_accuracy,
)
from repro.nn.initializers import GlorotUniform, HeNormal, LecunNormal, Zeros, Constant


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))


class TestTopK:
    def test_top1_equals_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        labels = np.array([0, 0])
        assert topk_accuracy(scores, labels, k=1) == 0.5

    def test_topk_covers_all(self):
        scores = np.random.default_rng(0).random((10, 5))
        labels = np.random.default_rng(1).integers(0, 5, 10)
        assert topk_accuracy(scores, labels, k=5) == 1.0

    def test_bad_shape_raises(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros(5), np.zeros(5, dtype=int))


class TestConfusion:
    def test_diagonal_when_perfect(self):
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(labels, labels, 3)
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal(self):
        matrix = confusion_matrix(np.array([1]), np.array([0]), 2)
        assert matrix[0, 1] == 1

    def test_per_class_accuracy_with_absent_class(self):
        pca = per_class_accuracy(np.array([0, 0]), np.array([0, 1]), 3)
        assert pca[0] == 1.0
        assert pca[1] == 0.0
        assert np.isnan(pca[2])

    def test_out_of_range_raises(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([5]), np.array([0]), 3)


class TestInitializers:
    @pytest.mark.parametrize("name", [
        "zeros", "glorot_uniform", "glorot_normal", "he_normal", "lecun_normal",
    ])
    def test_registry_and_shape(self, name):
        init = get_initializer(name)
        out = init((4, 5), np.random.default_rng(0))
        assert out.shape == (4, 5)

    def test_zeros(self):
        assert not Zeros()((3, 3)).any()

    def test_constant(self):
        np.testing.assert_array_equal(Constant(2.5)((2,)), [2.5, 2.5])

    def test_glorot_uniform_bound(self):
        out = GlorotUniform()((100, 100), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.abs(out).max() <= limit

    def test_he_variance(self):
        out = HeNormal()((2000, 50), np.random.default_rng(0))
        assert out.var() == pytest.approx(2.0 / 50, rel=0.1)

    def test_lecun_variance(self):
        out = LecunNormal()((2000, 50), np.random.default_rng(0))
        assert out.var() == pytest.approx(1.0 / 50, rel=0.1)

    def test_conv_fan_handling(self):
        out = GlorotUniform()((8, 4, 3, 3), np.random.default_rng(0))
        assert out.shape == (8, 4, 3, 3)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_initializer("orthogonal")


class TestSerialization:
    def make_net(self):
        return Network(
            [
                Conv2D(3, 3, activation="relu", name="C1"),
                MaxPool2D(2, name="P1"),
                Flatten(),
                Dense(10, activation="softmax", name="FC"),
            ],
            input_shape=(1, 8, 8),
            rng=11,
        )

    def test_round_trip_preserves_outputs(self, tmp_path):
        net = self.make_net()
        x = np.random.default_rng(0).random((4, 1, 8, 8))
        path = save_network(net, tmp_path / "model.npz")
        loaded = load_network(path)
        np.testing.assert_allclose(loaded.forward(x), net.forward(x))

    def test_round_trip_preserves_architecture(self, tmp_path):
        net = self.make_net()
        path = save_network(net, tmp_path / "model.npz")
        loaded = load_network(path)
        assert [type(layer).__name__ for layer in loaded.layers] == [
            type(layer).__name__ for layer in net.layers
        ]
        assert loaded.input_shape == net.input_shape

    def test_appends_npz_suffix(self, tmp_path):
        net = self.make_net()
        path = save_network(net, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network(tmp_path / "nope.npz")

    def test_non_checkpoint_file_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(SerializationError):
            load_network(path)
