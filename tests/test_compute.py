"""Compute policy, workspaces, dtype parity and the stage-score cache."""

import copy

import numpy as np
import pytest

from repro.cdl.score_cache import StageScoreCache
from repro.cdl.statistics import evaluate_cached, evaluate_cdln
from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    ComputePolicy,
    Conv2D,
    Dense,
    Network,
    Workspace,
    active_policy,
    compute_policy,
    load_network,
    save_network,
)
from repro.nn.compute import resolve_dtype
from repro.nn.layers import AvgPool2D, Flatten
from repro.nn.tensor_ops import col2im, im2col, one_hot

RNG = np.random.default_rng(0)


class TestComputePolicy:
    def test_default_matches_environment(self):
        import os

        policy = active_policy()
        expected = os.environ.get("REPRO_COMPUTE_DTYPE", "float64")
        assert policy.dtype == np.dtype(expected)
        reuse_env = os.environ.get("REPRO_WORKSPACE_REUSE", "1").strip().lower()
        assert policy.workspace_reuse == (reuse_env in ("1", "true", "on"))

    def test_context_override_and_restore(self):
        outer = active_policy()
        with compute_policy(dtype="float32") as policy:
            assert policy.dtype == np.float32
            assert active_policy().dtype == np.float32
            # Unset fields inherit the surrounding policy.
            assert active_policy().workspace_reuse == outer.workspace_reuse
        assert active_policy().dtype == outer.dtype

    def test_nested_overrides(self):
        with compute_policy(dtype="float32", workspace_reuse=True):
            with compute_policy(workspace_reuse=False):
                assert active_policy().dtype == np.float32
                assert not active_policy().workspace_reuse
            assert active_policy().workspace_reuse

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ConfigurationError):
            ComputePolicy(dtype="float16")
        with pytest.raises(ConfigurationError):
            resolve_dtype(np.int32)

    def test_resolve_dtype_none_follows_policy(self):
        with compute_policy(dtype="float32"):
            assert resolve_dtype(None) == np.float32

    def test_cast_is_noop_for_matching_dtype(self):
        x = np.ones(3, dtype=active_policy().dtype)
        assert active_policy().cast(x) is x


class TestWorkspace:
    def test_reuses_backing_buffer(self):
        ws = Workspace()
        a = ws.request((4, 8), np.dtype(np.float64))
        b = ws.request((2, 16), np.dtype(np.float64))
        assert a.shape == (4, 8) and b.shape == (2, 16)
        assert np.shares_memory(a, b)

    def test_grows_geometrically(self):
        ws = Workspace()
        ws.request((10,), np.dtype(np.float64))
        assert ws.capacity == 10
        ws.request((11,), np.dtype(np.float64))
        assert ws.capacity == 20  # doubled, not just +1

    def test_dtype_switch_reallocates(self):
        ws = Workspace()
        ws.request((8,), np.dtype(np.float64))
        out = ws.request((8,), np.dtype(np.float32))
        assert out.dtype == np.float32

    def test_network_pickle_and_deepcopy_survive_workspaces(self):
        import pickle

        net = Network(
            [Conv2D(2, 3), Flatten(), Dense(4)], input_shape=(1, 6, 6), rng=0
        )
        x = RNG.random((2, 1, 6, 6))
        expected = net.forward(x)
        revived = pickle.loads(pickle.dumps(net))
        np.testing.assert_array_equal(revived.forward(x), expected)
        np.testing.assert_array_equal(copy.deepcopy(net).forward(x), expected)


class TestPolicyThreading:
    def test_initializers_follow_policy(self):
        with compute_policy(dtype="float32"):
            net = Network(
                [Conv2D(2, 3), Flatten(), Dense(4)], input_shape=(1, 6, 6), rng=0
            )
        assert net.dtype == np.float32
        for layer in net.layers:
            for param in layer.params.values():
                assert param.dtype == np.float32

    def test_forward_follows_param_dtype(self):
        with compute_policy(dtype="float32"):
            net = Network([Flatten(), Dense(4)], input_shape=(1, 3, 3), rng=0)
        out = net.forward(RNG.random((2, 1, 3, 3)))  # float64 input
        assert out.dtype == np.float32

    def test_astype_round_trip(self):
        net = Network([Flatten(), Dense(4)], input_shape=(1, 3, 3), rng=0)
        original = net.layers[1].params["weight"].copy()
        net.astype(np.float32)
        assert net.dtype == np.float32
        net.astype(np.float64)
        # float64 -> float32 -> float64 keeps the float32 rounding...
        np.testing.assert_allclose(
            net.layers[1].params["weight"], original, rtol=1e-6
        )

    def test_one_hot_dtype(self):
        assert one_hot(np.array([0, 1]), 3).dtype == np.float64
        assert one_hot(np.array([0, 1]), 3, dtype=np.float32).dtype == np.float32

    def test_serialization_respects_policy(self, tmp_path):
        with compute_policy(dtype="float32"):
            net = Network([Flatten(), Dense(4)], input_shape=(1, 3, 3), rng=0)
            path = save_network(net, tmp_path / "ckpt.npz")
            # Lossless float32 round-trip under a float32 policy.
            loaded = load_network(path)
            assert loaded.dtype == np.float32
            np.testing.assert_array_equal(
                loaded.layers[1].params["weight"], net.layers[1].params["weight"]
            )
        # Under a float64 policy the same checkpoint loads as float64.
        with compute_policy(dtype="float64"):
            loaded64 = load_network(path)
            assert loaded64.dtype == np.float64


class TestZeroCopySubstrate:
    def test_im2col_out_buffer(self):
        x = RNG.random((2, 3, 6, 6))
        expected = im2col(x, 3, 1)
        out = np.empty_like(expected)
        got = im2col(x, 3, 1, out=out)
        assert got is out
        np.testing.assert_array_equal(got, expected)

    def test_im2col_rejects_bad_out(self):
        x = RNG.random((2, 3, 6, 6))
        with pytest.raises(ShapeError):
            im2col(x, 3, 1, out=np.empty((1, 1)))

    def test_col2im_out_buffer_matches(self):
        x = RNG.random((2, 2, 6, 6))
        cols = im2col(x, 2, 2)
        expected = col2im(cols, x.shape, 2, 2)
        out = np.empty((2, 2, 6, 6))
        got = col2im(cols, x.shape, 2, 2, out=out)
        np.testing.assert_array_equal(got, expected)

    def test_col2im_nonoverlap_matches_loop(self):
        # stride >= kernel takes the vectorized strided-view path; the
        # overlapping geometry takes the accumulation loop.  Their adjoint
        # semantics must agree where both apply (disjoint windows sum once).
        x_shape = (2, 3, 8, 8)
        cols = RNG.random((2 * 4 * 4, 3 * 2 * 2))
        fast = col2im(cols, x_shape, 2, 2)
        blocks = cols.reshape(2, 4, 4, 3, 2, 2).transpose(0, 3, 1, 2, 4, 5)
        naive = np.zeros(x_shape)
        for i in range(2):
            for j in range(2):
                naive[:, :, i::2, j::2] += blocks[:, :, :, :, i, j]
        np.testing.assert_array_equal(fast, naive)

    def test_workspace_reuse_identical_outputs(self):
        net = Network(
            [Conv2D(3, 3), Flatten(), Dense(5)], input_shape=(2, 8, 8), rng=3
        )
        x = RNG.random((4, 2, 8, 8))
        with compute_policy(workspace_reuse=True):
            on = net.forward(x)
        with compute_policy(workspace_reuse=False):
            off = net.forward(x)
        np.testing.assert_array_equal(on, off)

    def test_conv_training_survives_workspace_reuse(self):
        # The cached im2col matrix must stay valid across the interleaved
        # forward/backward pattern of a training loop.
        layer = Conv2D(2, 3)
        layer.build((1, 6, 6), np.random.default_rng(0))
        with compute_policy(workspace_reuse=True):
            for _ in range(3):
                x = RNG.random((2, 1, 6, 6))
                out = layer.forward(x, training=True)
                layer.backward(np.ones_like(out))
        assert layer.grads["weight"].shape == layer.params["weight"].shape

    def test_inference_forward_between_training_forward_and_backward(self):
        # An inference pass interleaved between a training forward and its
        # backward (mid-step validation) must not clobber the cached
        # im2col columns the backward reads.
        def grads_for(interleave: bool):
            layer = Conv2D(2, 3)
            layer.build((1, 6, 6), np.random.default_rng(5))
            x = np.random.default_rng(6).random((2, 1, 6, 6))
            with compute_policy(workspace_reuse=True):
                out = layer.forward(x, training=True)
                if interleave:
                    layer.forward(np.random.default_rng(7).random((4, 1, 6, 6)))
                layer.backward(np.ones_like(out))
            return layer.grads["weight"].copy()

        np.testing.assert_array_equal(grads_for(False), grads_for(True))

    def test_avgpool_overlapping_backward_matches_adjoint(self):
        # stride < window exercises the accumulation fallback.
        layer = AvgPool2D(3, stride=1)
        layer.build((1, 5, 5), None)
        x = RNG.random((1, 1, 5, 5))
        layer.forward(x, training=True)
        grad = RNG.random((1, 1, 3, 3))
        dx = layer.backward(grad)
        naive = np.zeros_like(x)
        for i in range(3):
            for j in range(3):
                naive[0, 0, i : i + 3, j : j + 3] += grad[0, 0, i, j] / 9.0
        np.testing.assert_allclose(dx, naive, rtol=1e-12)


class TestDtypeParity:
    def test_float32_predict_agrees_with_float64(self, trained_3c, tiny_test_set):
        cdln64 = trained_3c.cdln
        cdln32 = copy.deepcopy(cdln64).astype(np.float32)
        r64 = cdln64.predict(tiny_test_set.images, delta=0.6)
        r32 = cdln32.predict(tiny_test_set.images, delta=0.6)
        np.testing.assert_array_equal(r64.labels, r32.labels)
        np.testing.assert_allclose(r64.confidences, r32.confidences, atol=1e-4)

    def test_float32_training_reaches_float64_accuracy(self, tiny_scale):
        from repro.experiments.common import get_datasets, get_trained

        _, test = get_datasets(tiny_scale, seed=7)
        acc64 = float(
            np.mean(
                get_trained("mnist_3c", tiny_scale, seed=7).baseline.predict_labels(
                    test.images
                )
                == test.labels
            )
        )
        with compute_policy(dtype="float32"):
            trained32 = get_trained("mnist_3c", tiny_scale, seed=7)
            assert trained32.baseline.dtype == np.float32
            acc32 = float(
                np.mean(
                    trained32.baseline.predict_labels(test.images) == test.labels
                )
            )
        assert abs(acc64 - acc32) < 0.05


class TestStageScoreCache:
    def test_replay_matches_naive_evaluate_exactly(self, trained_3c, tiny_test_set):
        cdln = trained_3c.cdln
        cache = StageScoreCache.build(cdln, tiny_test_set.images)
        # The naive path scores shrinking active subsets, the cache scores
        # full batches; in float64 the two agree exactly, in float32 BLAS
        # rounding may tie-break a borderline input or two differently.
        float64 = cdln.baseline.dtype == np.float64
        for delta in (0.2, 0.4, 0.6, 0.8):
            naive = evaluate_cdln(cdln, tiny_test_set, delta=delta)
            fast = evaluate_cached(cache, tiny_test_set, delta=delta)
            if float64:
                np.testing.assert_array_equal(
                    naive.result.labels, fast.result.labels
                )
                np.testing.assert_array_equal(
                    naive.result.exit_stages, fast.result.exit_stages
                )
                assert naive.ops.average_ops == fast.ops.average_ops
                assert naive.accuracy == fast.accuracy
                np.testing.assert_allclose(
                    naive.result.confidences, fast.result.confidences, atol=1e-12
                )
            else:
                assert np.sum(naive.result.labels != fast.result.labels) <= 2
                assert np.sum(naive.result.exit_stages != fast.result.exit_stages) <= 2
                np.testing.assert_allclose(
                    naive.ops.average_ops, fast.ops.average_ops, rtol=1e-2
                )

    def test_subset_replay_matches_clone(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln
        cache = StageScoreCache.build(cdln, tiny_test_set.images)
        names = [s.name for s in cdln.linear_stages]
        for count in range(len(names) + 1):
            subset = names[:count]
            naive = cdln.clone_with_stages(subset).predict(
                tiny_test_set.images, delta=0.6
            )
            fast = cache.replay(0.6, stages=subset)
            np.testing.assert_array_equal(naive.labels, fast.labels)
            np.testing.assert_array_equal(naive.exit_stages, fast.exit_stages)

    def test_max_stage_matches_executor(self, trained_3c_all_taps, tiny_test_set):
        from repro.serving.cascade import execute_cascade

        cdln = trained_3c_all_taps.cdln
        cache = StageScoreCache.build(cdln, tiny_test_set.images)
        naive = execute_cascade(cdln, tiny_test_set.images, 0.6, max_stage=1)
        fast = cache.replay(0.6, max_stage=1)
        np.testing.assert_array_equal(naive.labels, fast.labels)
        np.testing.assert_array_equal(naive.exit_stages, fast.exit_stages)
        assert fast.exit_stages.max() <= 1

    def test_policy_override_matches_swapped_module(
        self, trained_3c, tiny_test_set
    ):
        from repro.cdl.confidence import ActivationModule

        cdln = trained_3c.cdln
        cache = StageScoreCache.build(cdln, tiny_test_set.images)
        module = ActivationModule(delta=0.6, policy="max_probability")
        original = cdln.activation_module
        cdln.activation_module = module
        try:
            naive = cdln.predict(tiny_test_set.images, delta=0.6)
        finally:
            cdln.activation_module = original
        fast = cache.replay(0.6, activation_module=module)
        np.testing.assert_array_equal(naive.labels, fast.labels)
        np.testing.assert_array_equal(naive.exit_stages, fast.exit_stages)

    def test_empty_build_is_well_formed_and_unknown_stage_rejected(
        self, trained_3c, tiny_test_set
    ):
        # An empty sample yields an empty (but fully functional) cache; the
        # degenerate-input contract lives in tests/test_serving.py too.
        empty = StageScoreCache.build(trained_3c.cdln, tiny_test_set.images[:0])
        assert empty.num_inputs == 0
        assert empty.replay(0.6).labels.shape == (0,)
        cache = StageScoreCache.build(trained_3c.cdln, tiny_test_set.images[:8])
        with pytest.raises(ConfigurationError):
            cache.scores_for("nope")

    def test_evaluate_cached_rejects_size_mismatch(self, trained_3c, tiny_test_set):
        cache = StageScoreCache.build(trained_3c.cdln, tiny_test_set.images[:16])
        with pytest.raises(ConfigurationError):
            evaluate_cached(cache, tiny_test_set, delta=0.6)
