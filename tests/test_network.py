"""Tests for the Network container: segments, taps, fused backward."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    MeanSquaredError,
    Network,
    SoftmaxCrossEntropy,
)

RNG = np.random.default_rng(0)


def _gc_atol() -> float:
    """Gradient-check tolerance matched to the active compute dtype."""
    from repro.nn.compute import active_policy

    return 1e-6 if active_policy().dtype == np.float64 else 2e-2


def small_net(rng=3, output="softmax"):
    return Network(
        [
            Conv2D(3, 3, activation="relu"),
            MaxPool2D(2),
            Flatten(),
            Dense(10, activation=output),
        ],
        input_shape=(1, 8, 8),
        rng=rng,
    )


class TestConstruction:
    def test_shapes_propagate(self):
        net = small_net()
        assert net.output_shape == (10,)
        shapes = [s for _, _, s in net.layer_shapes()]
        assert shapes == [(3, 6, 6), (3, 3, 3), (27,), (10,)]

    def test_empty_layer_list_raises(self):
        with pytest.raises(ConfigurationError):
            Network([], input_shape=(1, 8, 8))

    def test_deterministic_init(self):
        a, b = small_net(rng=5), small_net(rng=5)
        np.testing.assert_array_equal(
            a.layers[0].params["weight"], b.layers[0].params["weight"]
        )

    def test_num_params(self):
        net = small_net()
        assert net.num_params == (3 * 9 + 3) + (27 * 10 + 10)

    def test_summary_mentions_every_layer(self):
        text = small_net().summary()
        for name in ("Conv2D", "MaxPool2D", "Flatten", "Dense", "total"):
            assert name in text


class TestForwardModes:
    def test_run_segment_composes_to_full_forward(self):
        net = small_net()
        x = RNG.random((4, 1, 8, 8))
        mid = net.run_segment(x, 0, 2)
        out = net.run_segment(mid, 2, None)
        np.testing.assert_allclose(out, net.forward(x))

    def test_run_segment_bad_range_raises(self):
        net = small_net()
        with pytest.raises(ConfigurationError):
            net.run_segment(RNG.random((1, 1, 8, 8)), 3, 1)

    def test_forward_collect_returns_taps(self):
        net = small_net()
        x = RNG.random((2, 1, 8, 8))
        out, taps = net.forward_collect(x, [1, 2])
        assert set(taps) == {1, 2}
        assert taps[1].shape == (2, 3, 3, 3)
        assert taps[2].shape == (2, 27)
        np.testing.assert_allclose(out, net.forward(x))

    def test_forward_collect_bad_tap_raises(self):
        net = small_net()
        with pytest.raises(ConfigurationError):
            net.forward_collect(RNG.random((1, 1, 8, 8)), [99])

    def test_predict_chunking_matches_single_pass(self):
        net = small_net()
        x = RNG.random((17, 1, 8, 8))
        np.testing.assert_allclose(net.predict(x, batch_size=5), net.predict(x))

    def test_predict_labels(self):
        net = small_net()
        x = RNG.random((3, 1, 8, 8))
        np.testing.assert_array_equal(
            net.predict_labels(x), net.predict(x).argmax(axis=1)
        )


class TestBackward:
    def test_full_backward_gradient_check(self, gradcheck):
        net = Network(
            [Flatten(), Dense(6, activation="tanh"), Dense(3, activation="sigmoid")],
            input_shape=(1, 2, 2),
            rng=1,
        )
        loss = MeanSquaredError()
        x = RNG.random((4, 1, 2, 2))
        labels = np.array([0, 1, 2, 0])
        out = net.forward(x, training=True)
        net.backward(loss, out, labels)
        analytic = net.layers[1].grads["weight"].copy()

        def value():
            return loss.value(net.forward(x, training=False), labels)

        numeric = gradcheck(value, net.layers[1].params["weight"])
        np.testing.assert_allclose(analytic, numeric, atol=_gc_atol())

    def test_fused_softmax_ce_matches_explicit_chain(self, gradcheck):
        """The fused softmax/CE path must equal the numeric gradient."""
        net = Network(
            [Flatten(), Dense(4, activation="softmax")],
            input_shape=(1, 2, 2),
            rng=2,
        )
        loss = SoftmaxCrossEntropy()
        x = RNG.random((5, 1, 2, 2))
        labels = np.array([0, 1, 2, 3, 0])
        out = net.forward(x, training=True)
        net.backward(loss, out, labels)
        analytic = net.layers[1].grads["weight"].copy()

        def value():
            return loss.value(net.forward(x, training=False), labels)

        numeric = gradcheck(value, net.layers[1].params["weight"])
        np.testing.assert_allclose(analytic, numeric, atol=_gc_atol())

    def test_zero_grads(self):
        net = small_net()
        x = RNG.random((2, 1, 8, 8))
        out = net.forward(x, training=True)
        net.backward(SoftmaxCrossEntropy(), out, np.array([1, 2]))
        net.zero_grads()
        for layer in net.trainable_layers():
            for grad in layer.grads.values():
                assert not grad.any()
