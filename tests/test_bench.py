"""Tests for the repro.bench harness: registry, artifacts, compare gate.

Everything here uses toy benchmark specs (no model training) so the suite
stays fast; the real suites are exercised by the benchmark front ends.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    SCHEMA,
    BenchArtifact,
    BenchContext,
    BenchResult,
    Registry,
    Tolerance,
    benchmark,
    compare_dirs,
    load_artifact,
    load_suites,
    measure,
    run_benchmark,
    run_benchmarks,
    tier_from_env,
)
from repro.bench.artifact import validate_artifact_dict
from repro.bench.cli import main as cli_main
from repro.errors import ConfigurationError


def make_registry(metric_value: float = 2.0) -> Registry:
    """A registry with one cheap benchmark (no training)."""
    registry = Registry()

    @benchmark(
        "toy",
        group="tests",
        rounds=2,
        warmup_rounds=0,
        tolerances={"gated": Tolerance(rel=0.1), "loose": None},
        registry=registry,
    )
    def toy(ctx: BenchContext) -> BenchResult:
        return BenchResult(
            metrics={"gated": metric_value, "loose": 123.0},
            units=10.0,
            text="toy table",
            payload=metric_value,
        )

    @toy.check
    def _check(res: BenchResult) -> None:
        assert res.payload > 0

    return registry


class TestTolerance:
    def test_band_arithmetic(self):
        band = Tolerance(rel=0.1, abs=0.5)
        assert band.accepts(10.4, 10.0)  # inside 0.5 + 1.0
        assert band.accepts(11.5, 10.0)  # exactly on the edge
        assert not band.accepts(11.6, 10.0)
        assert Tolerance().accepts(3.0, 3.0)
        assert not Tolerance().accepts(3.0, 3.0001)

    def test_negative_bands_rejected(self):
        with pytest.raises(ConfigurationError):
            Tolerance(rel=-0.1)
        with pytest.raises(ConfigurationError):
            Tolerance(abs=-1.0)


class TestRegistry:
    def test_registration_and_lookup(self):
        registry = make_registry()
        spec = registry.get("toy")
        assert spec.group == "tests"
        assert "toy" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = make_registry()

        with pytest.raises(ConfigurationError, match="already registered"):

            @benchmark("toy", registry=registry)
            def again(ctx):
                return BenchResult(metrics={})

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            make_registry().get("nope")

    def test_context_validates_tier(self):
        spec = make_registry().get("toy")
        ctx = spec.context("tiny", seed=7)
        assert ctx.tier == "tiny"
        assert ctx.seed == 7
        assert ctx.scale.num_train == 400
        with pytest.raises(ConfigurationError, match="scale tier"):
            spec.context("huge")

    def test_tier_params_reach_context(self):
        registry = Registry()

        @benchmark("tiered", tiers={"tiny": {"batch": 8}}, registry=registry)
        def tiered(ctx):
            return BenchResult(metrics={"batch": float(ctx.params["batch"])})

        ctx = registry.get("tiered").context("tiny")
        assert ctx.params == {"batch": 8}
        assert registry.get("tiered").context("small").params == {}

    def test_builtin_suites_register_all_benchmarks(self):
        registry = load_suites()
        names = set(registry.names())
        expected = {
            "table3_accuracy", "fig5_ops", "fig6_energy", "fig7_accuracy_stages",
            "fig8_difficulty", "fig9_stage_sweep", "fig10_delta_sweep",
            "table4_examples", "ablation_confidence_policies",
            "ablation_gain_epsilon", "ablation_lc_training_rule",
            "ablation_scalable_effort", "substrate_mnist_2c_inference",
            "substrate_mnist_3c_inference", "substrate_mnist_3c_training_epoch",
            "substrate_synthetic_generation", "substrate_conditional_inference",
            "serving_throughput", "serving_delta_budget", "serving_hot_path",
            "scenarios_robustness_sweep", "scenarios_drift_replay",
        }
        assert expected <= names

    def test_load_suites_idempotent(self):
        before = len(load_suites())
        assert len(load_suites()) == before


class TestMeasure:
    def test_rounds_and_warmup_counts(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        stats, payload = measure(fn, rounds=3, warmup_rounds=2)
        assert len(calls) == 5
        assert payload == 5
        assert stats.rounds == 3
        assert len(stats.wall_s) == 3
        assert stats.min_s <= stats.mean_s <= stats.max_s
        assert stats.peak_rss_mb > 0

    def test_bad_protocol_rejected(self):
        with pytest.raises(Exception):
            measure(lambda: None, rounds=0)
        with pytest.raises(ValueError):
            measure(lambda: None, warmup_rounds=-1)


class TestArtifact:
    def test_run_write_load_round_trip(self, tmp_path):
        spec = make_registry().get("toy")
        artifact = run_benchmark(spec, tier="tiny", seed=3)
        assert artifact.schema == SCHEMA
        assert artifact.metrics == {"gated": 2.0, "loose": 123.0}
        assert artifact.throughput_per_s is not None
        assert artifact.environment["numpy"]

        path = artifact.write(tmp_path)
        assert path.name == "BENCH_toy.json"
        loaded = load_artifact(path)
        assert loaded.benchmark == "toy"
        assert loaded.tier == "tiny"
        assert loaded.seed == 3
        assert loaded.metrics == artifact.metrics
        assert loaded.timing["rounds"] == spec.rounds

    def test_schema_mismatch_rejected(self, tmp_path):
        spec = make_registry().get("toy")
        path = run_benchmark(spec, tier="tiny").write(tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = "repro.bench/999"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match="schema"):
            load_artifact(path)

    def test_missing_keys_and_bad_metrics_rejected(self):
        with pytest.raises(ConfigurationError, match="missing keys"):
            validate_artifact_dict({"schema": SCHEMA})
        spec = make_registry().get("toy")
        good = run_benchmark(spec, tier="tiny").to_dict()
        bad = dict(good, metrics={"x": "fast"})
        with pytest.raises(ConfigurationError, match="numeric"):
            validate_artifact_dict(bad)

    def test_non_finite_metric_rejected(self):
        artifact = BenchArtifact(
            benchmark="t", group="g", tier="tiny", seed=0,
            timing={}, metrics={"bad": float("nan")}, environment={},
        )
        with pytest.raises(ConfigurationError, match="non-finite"):
            artifact.to_dict()

    def test_check_flag_runs_shape_check(self):
        registry = Registry()

        @benchmark("fails", registry=registry)
        def fails(ctx):
            return BenchResult(metrics={}, payload=None)

        @fails.check
        def _check(res):
            raise AssertionError("shape violated")

        run_benchmark(registry.get("fails"), tier="tiny")  # checks off: fine
        with pytest.raises(AssertionError, match="shape violated"):
            run_benchmark(registry.get("fails"), tier="tiny", check=True)


class TestCompare:
    def _write_dirs(self, tmp_path, registry, *, perturb=None):
        base_dir = tmp_path / "base"
        run_dir = tmp_path / "run"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        run_benchmarks(tier="tiny", out_dir=run_dir, registry=registry)
        if perturb:
            path = run_dir / "BENCH_toy.json"
            data = json.loads(path.read_text())
            data["metrics"].update(perturb)
            path.write_text(json.dumps(data))
        return run_dir, base_dir

    def test_identical_run_passes(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert report.passed
        assert report.exit_code == 0
        assert "PASS" in report.render()

    def test_perturbed_metric_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(
            tmp_path, registry, perturb={"gated": 2.5}
        )
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert report.exit_code == 1
        assert [d.metric for d in report.regressions] == ["gated"]
        assert "REGRESSION" in report.render()

    def test_informational_metric_never_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(
            tmp_path, registry, perturb={"loose": 1e9}
        )
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert report.passed

    def test_missing_run_artifact_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        (run_dir / "BENCH_toy.json").unlink()
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert report.missing == ["toy"]
        assert report.exit_code == 1

    def test_vanished_metric_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        path = run_dir / "BENCH_toy.json"
        data = json.loads(path.read_text())
        del data["metrics"]["gated"]
        path.write_text(json.dumps(data))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert any("vanished" in e for e in report.errors)

    def test_unbaselined_run_artifact_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        extra = json.loads((run_dir / "BENCH_toy.json").read_text())
        extra["benchmark"] = "brand_new"
        (run_dir / "BENCH_brand_new.json").write_text(json.dumps(extra))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert report.unbaselined == ["brand_new"]
        assert report.exit_code == 1
        assert "UNBASELINED" in report.render()

    def test_seed_mismatch_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        path = run_dir / "BENCH_toy.json"
        data = json.loads(path.read_text())
        data["seed"] = 99
        path.write_text(json.dumps(data))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert any("seed mismatch" in e for e in report.errors)

    def test_run_only_metric_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(
            tmp_path, registry, perturb={"brand_new_metric": 7.0}
        )
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert any("no baseline value" in e for e in report.errors)

    def test_tier_mismatch_fails(self, tmp_path):
        registry = make_registry()
        run_dir, base_dir = self._write_dirs(tmp_path, registry)
        path = run_dir / "BENCH_toy.json"
        data = json.loads(path.read_text())
        data["tier"] = "full"
        path.write_text(json.dumps(data))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert any("tier mismatch" in e for e in report.errors)

    def test_empty_baseline_dir_fails(self, tmp_path):
        registry = make_registry()
        report = compare_dirs(tmp_path, tmp_path, registry=registry)
        assert report.exit_code == 1


class TestScaleTierMechanism:
    def test_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert tier_from_env() == "small"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert tier_from_env() == "tiny"

    def test_invalid_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "gigantic")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_SCALE"):
            tier_from_env()


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5_ops" in out
        assert "serving_throughput" in out

    def test_compare_exit_codes_from_cli(self, tmp_path, capsys):
        registry = make_registry()
        base_dir = tmp_path / "base"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        code = cli_main(
            ["compare", "--run-dir", str(base_dir), "--baseline-dir", str(base_dir)]
        )
        assert code == 0
        path = base_dir / "BENCH_toy.json"
        data = json.loads(path.read_text())
        data["metrics"]["gated"] = 99.0
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "BENCH_toy.json").write_text(json.dumps(data))
        code = cli_main(
            ["compare", "--run-dir", str(run_dir), "--baseline-dir", str(base_dir)]
        )
        assert code == 1

    def test_update_baseline_inherits_existing_tier(self, tmp_path, monkeypatch):
        from repro.bench.cli import _resolve_tier

        registry = make_registry()
        base_dir = tmp_path / "baselines"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        # Env says small, but the committed baselines are tiny: inherit tiny.
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert _resolve_tier(None, base_dir) == "tiny"
        assert _resolve_tier("full", base_dir) == "full"  # explicit flag wins
        assert _resolve_tier(None, tmp_path / "empty") == "small"

    def test_update_baseline_prunes_stale_artifacts(self, tmp_path, capsys):
        from repro.bench.cli import cmd_run

        registry = make_registry()
        base_dir = tmp_path / "baselines"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        stale = base_dir / "BENCH_removed_bench.json"
        stale.write_text((base_dir / "BENCH_toy.json").read_text())

        # A full update-baseline over the *global* registry would train
        # models; exercise the pruning logic through cmd_run's seam with
        # the toy registry by monkey-free direct call.
        import argparse

        import repro.bench.cli as cli_mod
        import repro.bench.runner as runner_mod

        original = runner_mod.run_benchmarks
        cli_mod.run_benchmarks = (
            lambda *a, **kw: original(*a, **dict(kw, registry=registry))
        )
        try:
            args = argparse.Namespace(
                scale="tiny", seed=0, only=None, rounds=None,
                warmup_rounds=None, check=False,
            )
            assert cmd_run(args, base_dir, baseline_dir=base_dir) == 0
        finally:
            cli_mod.run_benchmarks = original
        assert not stale.exists()
        assert (base_dir / "BENCH_toy.json").exists()

    def test_unknown_benchmark_is_config_error(self, capsys):
        code = cli_main(["run", "--only", "no_such_bench", "--scale", "tiny"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestCliErrorPaths:
    """The harness's failure modes: every bad input must map to a clear
    message and the right exit code (2 = usage/config, 1 = gate failure)."""

    def _baseline_dir(self, tmp_path):
        registry = make_registry()
        base_dir = tmp_path / "base"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        return base_dir

    def test_unknown_spec_in_update_baseline(self, capsys):
        code = cli_main(
            ["update-baseline", "--only", "no_such_bench", "--scale", "tiny",
             "--baseline-dir", "/tmp/nonexistent-baselines"]
        )
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_compare_missing_baseline_dir_fails(self, tmp_path, capsys):
        run_dir = self._baseline_dir(tmp_path)
        code = cli_main(
            ["compare", "--run-dir", str(run_dir),
             "--baseline-dir", str(tmp_path / "never-written")]
        )
        assert code == 1
        assert "no baseline artifacts" in capsys.readouterr().out

    def test_compare_missing_run_artifact_fails(self, tmp_path, capsys):
        base_dir = self._baseline_dir(tmp_path)
        empty_run = tmp_path / "run"
        empty_run.mkdir()
        (empty_run / "BENCH_other.json").write_text(
            (base_dir / "BENCH_toy.json").read_text().replace('"toy"', '"other"')
        )
        code = cli_main(
            ["compare", "--run-dir", str(empty_run), "--baseline-dir", str(base_dir)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "MISSING" in out and "UNBASELINED" in out

    def test_corrupt_artifact_json_is_config_error(self, tmp_path, capsys):
        base_dir = self._baseline_dir(tmp_path)
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "BENCH_toy.json").write_text("{not json")
        code = cli_main(
            ["compare", "--run-dir", str(run_dir), "--baseline-dir", str(base_dir)]
        )
        assert code == 2
        assert "cannot read artifact" in capsys.readouterr().err

    def test_truncated_artifact_dict_is_config_error(self, tmp_path):
        path = tmp_path / "BENCH_half.json"
        path.write_text(json.dumps({"schema": SCHEMA, "benchmark": "half"}))
        with pytest.raises(ConfigurationError, match="missing keys"):
            load_artifact(path)

    def test_tolerance_band_edge_passes_epsilon_beyond_fails(self, tmp_path):
        # Exactly-representable numbers so "on the edge" is exact in binary:
        # baseline 2.0, Tolerance(abs=0.5), run value 2.5.
        registry = Registry()

        @benchmark(
            "edge",
            rounds=1,
            warmup_rounds=0,
            tolerances={"gated": Tolerance(abs=0.5)},
            registry=registry,
        )
        def edge(ctx):
            return BenchResult(metrics={"gated": 2.0})

        base_dir = tmp_path / "base"
        run_dir = tmp_path / "run"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        run_benchmarks(tier="tiny", out_dir=run_dir, registry=registry)
        path = run_dir / "BENCH_edge.json"
        data = json.loads(path.read_text())

        # |2.5 - 2.0| == 0.5: exactly on the band edge must pass...
        data["metrics"]["gated"] = 2.5
        path.write_text(json.dumps(data))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert report.passed

        # ...while one representable step beyond it must fail.
        data["metrics"]["gated"] = np.nextafter(2.5, 10.0)
        path.write_text(json.dumps(data))
        report = compare_dirs(run_dir, base_dir, registry=registry)
        assert not report.passed
        assert [d.metric for d in report.regressions] == ["gated"]

    def test_mixed_tier_baselines_need_explicit_scale(self, tmp_path):
        from repro.bench.cli import _resolve_tier

        registry = make_registry()
        base_dir = tmp_path / "baselines"
        run_benchmarks(tier="tiny", out_dir=base_dir, registry=registry)
        other = json.loads((base_dir / "BENCH_toy.json").read_text())
        other["benchmark"] = "toy_small"
        other["tier"] = "small"
        (base_dir / "BENCH_toy_small.json").write_text(json.dumps(other))
        with pytest.raises(ConfigurationError, match="mix tiers"):
            _resolve_tier(None, base_dir)
