"""Tests for the observability stack (``repro.obs``).

The three contracts this file pins down:

* **No-op identity** -- the default :data:`NULL_OBSERVER` is a single
  process-wide instance whose every method is a genuine no-op, so an
  uninstrumented engine carries zero telemetry state.
* **Exposition round-trip** -- ``render_prometheus()`` output parses back
  via :func:`parse_prometheus` into exactly the values the registry holds
  (counters, gauges, and cumulative histogram series).
* **Exact reconciliation** -- per-span OPS summed the way
  :class:`ServingMetrics` sums them reproduce ``MetricsSnapshot.mean_ops``
  bit for bit (``==``, never ``approx``).
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.obs import (
    DEFAULT_BUCKETS,
    EVENTS_SCHEMA,
    METRICS_SCHEMA,
    NULL_OBSERVER,
    TRACE_SCHEMA,
    EventLog,
    MetricsRegistry,
    Observer,
    TraceRecorder,
    iter_records,
    parse_prometheus,
    read_header,
    read_spans,
    reconcile_ops,
    validate_span,
)
from repro.obs import cli
from repro.serving.config import ServingConfig
from repro.serving.controller import DeltaController
from repro.serving.engine import InferenceEngine
from repro.serving.batching import MicroBatchPolicy


def _example_span(request_id=0, batch_id=0, ops=10.0, exit_stage=0):
    return {
        "kind": "span",
        "request_id": request_id,
        "batch_id": batch_id,
        "model_spec": "default:1",
        "queue_wait_s": 0.0001,
        "latency_s": 0.002,
        "exit_stage": exit_stage,
        "exit_stage_name": "O1" if exit_stage == 0 else "FC",
        "confidence": 0.9,
        "delta": 0.6,
        "max_stage": None,
        "batch_size": 4,
        "ops": ops,
        "energy_pj": ops * 0.1,
        "stages": [
            {"stage": 0, "name": "O1", "active": 4, "wall_s": 0.001, "ops": 10.0},
        ],
    }


# -- metrics registry ----------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.", labels=("exit_stage",))
        c.inc(exit_stage=0)
        c.inc(2.0, exit_stage=0)
        c.inc(exit_stage=1)
        assert c.value(exit_stage=0) == 3.0
        assert c.value(exit_stage=1) == 1.0
        assert c.value(exit_stage=5) == 0.0  # never-incremented series

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(7.0)
        g.dec(3.0)
        g.inc()
        assert g.value() == 5.0

    def test_histogram_bucketing(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        cumulative, total, count = h.snapshot()
        assert cumulative == [1, 3, 4, 5]  # includes the +Inf tail
        assert total == pytest.approx(5.605)
        assert count == 5

    def test_histogram_observe_many_matches_observe(self):
        reg = MetricsRegistry()
        one = reg.histogram("a", buckets=(0.01, 0.1))
        many = reg.histogram("b", buckets=(0.01, 0.1))
        values = [0.001, 0.02, 0.2, 0.05]
        for v in values:
            one.observe(v)
        many.observe_many(np.array(values))
        assert one.snapshot() == many.snapshot()

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=(0.1, 0.1))
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h2", buckets=())

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert len(reg) == 1
        assert "x_total" in reg

    def test_kind_mismatch_is_loud(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total")

    def test_label_set_mismatch_is_loud(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("a",))
        with pytest.raises(ConfigurationError):
            reg.counter("x_total", labels=("b",))

    def test_bucket_mismatch_is_loud(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("h", buckets=(0.5, 1.0))

    def test_wrong_labels_at_write_time(self):
        c = MetricsRegistry().counter("x_total", labels=("stage",))
        with pytest.raises(ConfigurationError):
            c.inc(wrong=1)
        with pytest.raises(ConfigurationError):
            c.inc()  # missing the declared label

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("1bad")
        with pytest.raises(ConfigurationError):
            reg.counter("ok_total", labels=("bad-label",))


class TestPrometheusExposition:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests.", labels=("stage",)).inc(
            3.0, stage="O1"
        )
        reg.gauge("drift_score", "Score.").set(0.25)
        h = reg.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)
        parsed = parse_prometheus(reg.render_prometheus())
        assert parsed[("req_total", (("stage", "O1"),))] == 3.0
        assert parsed[("drift_score", ())] == 0.25
        assert parsed[("lat_seconds_bucket", (("le", "0.01"),))] == 1.0
        assert parsed[("lat_seconds_bucket", (("le", "0.1"),))] == 2.0
        assert parsed[("lat_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert parsed[("lat_seconds_count", ())] == 3.0
        assert parsed[("lat_seconds_sum", ())] == pytest.approx(5.055)

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        reg.counter("x_total", labels=("k",)).inc(k=nasty)
        parsed = parse_prometheus(reg.render_prometheus())
        assert parsed[("x_total", (("k", nasty),))] == 1.0

    def test_exposition_has_type_headers(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help text").inc()
        text = reg.render_prometheus()
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ConfigurationError):
            parse_prometheus("this is not exposition format")

    def test_json_exporter_schema(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        payload = json.loads(reg.render_json())
        assert payload["schema"] == METRICS_SCHEMA
        [family] = payload["metrics"]
        assert family["name"] == "g"
        assert family["kind"] == "gauge"
        assert family["samples"] == [{"labels": {}, "value": 1.5}]

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        MetricsRegistry().histogram("h")  # constructs without raising


# -- trace recorder ------------------------------------------------------------


class TestTraceRecorder:
    def test_header_first_then_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path, meta={"run": "t"}) as rec:
            rec.record(_example_span())
        header = read_header(path)
        assert header["schema"] == TRACE_SCHEMA
        assert header["run"] == "t"
        spans = read_spans(path)
        assert len(spans) == 1
        assert validate_span(spans[0]) is spans[0]

    def test_thread_safety(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = TraceRecorder(path)
        threads = 8
        per_thread = 50

        def work(tid):
            for i in range(per_thread):
                rec.record(_example_span(request_id=tid * per_thread + i))

        pool = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        rec.close()
        assert rec.records_written == threads * per_thread
        spans = read_spans(path)  # every line parses -- no interleaving
        assert len(spans) == threads * per_thread
        assert {s["request_id"] for s in spans} == set(
            range(threads * per_thread)
        )

    def test_closed_recorder_raises(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.jsonl")
        rec.close()
        assert rec.closed
        with pytest.raises(SerializationError):
            rec.record(_example_span())

    def test_iter_records_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with TraceRecorder(path) as rec:
            rec.record(_example_span())
        with path.open("a") as f:
            f.write("{not json\n")
        with pytest.raises(SerializationError, match=":3"):
            list(iter_records(path))

    def test_iter_records_rejects_missing_header(self, tmp_path):
        path = tmp_path / "nohdr.jsonl"
        path.write_text(json.dumps(_example_span()) + "\n")
        with pytest.raises(SerializationError, match="header"):
            list(iter_records(path))

    def test_iter_records_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": "repro.trace/v999"}) + "\n"
        )
        with pytest.raises(SerializationError, match="v999"):
            list(iter_records(path))

    def test_read_header_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SerializationError, match="empty"):
            read_header(path)

    def test_validate_span_missing_keys(self):
        span = _example_span()
        del span["ops"], span["batch_id"]
        with pytest.raises(ConfigurationError, match="batch_id"):
            validate_span(span)

    def test_reconcile_ops_batch_grouping(self):
        spans = [
            _example_span(request_id=i, batch_id=i // 2, ops=float(i + 1))
            for i in range(5)
        ]
        total, count = reconcile_ops(spans)
        assert count == 5
        assert total == 15.0


# -- event log -----------------------------------------------------------------


class TestEventLog:
    def test_ring_capacity(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert [e["i"] for e in log.tail()] == [2, 3, 4]
        assert [e["i"] for e in log.tail(2)] == [3, 4]
        assert log.kinds() == ("tick",)

    def test_event_shape(self):
        log = EventLog()
        event = log.emit("drift_detected", score=0.4)
        assert event["kind"] == "drift_detected"
        assert event["score"] == 0.4
        assert event["time_unix"] > 0

    def test_file_mirror_keeps_everything(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, capacity=2)
        for i in range(4):
            log.emit("tick", i=i)
        log.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["schema"] == EVENTS_SCHEMA
        assert [rec["i"] for rec in lines[1:]] == [0, 1, 2, 3]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)


# -- observer ------------------------------------------------------------------


class TestNullObserver:
    def test_identity_singleton(self):
        assert Observer.disabled() is NULL_OBSERVER
        assert Observer.disabled() is Observer.disabled()

    def test_disabled_flag_and_sinks(self):
        assert NULL_OBSERVER.enabled is False
        assert NULL_OBSERVER.trace is None
        assert NULL_OBSERVER.metrics is None
        assert NULL_OBSERVER.events is None

    def test_all_methods_are_noops(self):
        NULL_OBSERVER.span({"kind": "span"})
        NULL_OBSERVER.event("anything", detail=1)
        NULL_OBSERVER.inc("x_total", 2.0)
        NULL_OBSERVER.set_gauge("g", 1.0)
        NULL_OBSERVER.observe_hist("h", [0.1, 0.2])
        NULL_OBSERVER.flush()
        NULL_OBSERVER.close()
        assert NULL_OBSERVER.render_prometheus() == ""
        payload = json.loads(NULL_OBSERVER.render_json())
        assert payload == {"schema": METRICS_SCHEMA, "metrics": []}

    def test_enabled_observer_is_enabled(self):
        obs = Observer()
        assert obs.enabled is True
        assert obs.trace is None  # metrics/events live, tracing off
        obs.event("warm")
        assert obs.events.kinds() == ("warm",)
        assert obs.metrics.counter(
            "events_total", labels=("kind",)
        ).value(kind="warm") == 1.0


class TestObserver:
    def test_to_directory_layout(self, tmp_path):
        with Observer.to_directory(tmp_path, meta={"run": "x"}) as obs:
            obs.span(_example_span())
            obs.event("model_warm", model="default")
        assert read_header(tmp_path / "trace.jsonl")["run"] == "x"
        assert len(read_spans(tmp_path / "trace.jsonl")) == 1
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert events[0]["schema"] == EVENTS_SCHEMA
        assert events[1]["kind"] == "model_warm"

    def test_convenience_writers(self):
        obs = Observer()
        obs.inc("req_total", 3.0, stage="O1")
        obs.set_gauge("depth", 4.0)
        obs.observe_hist("lat", [0.01, 0.02])
        parsed = parse_prometheus(obs.render_prometheus())
        assert parsed[("req_total", (("stage", "O1"),))] == 3.0
        assert parsed[("depth", ())] == 4.0
        assert parsed[("lat_count", ())] == 2.0

    def test_write_exporters(self, tmp_path):
        obs = Observer()
        obs.set_gauge("g", 1.0)
        prom = obs.write_prometheus(tmp_path / "scrape.prom")
        assert "g 1.0" in prom.read_text()
        js = obs.write_metrics_json(tmp_path / "metrics.json")
        assert json.loads(js.read_text())["schema"] == METRICS_SCHEMA


# -- engine integration --------------------------------------------------------


class TestEngineIntegration:
    @pytest.fixture()
    def traced(self, tmp_path, trained_3c, tiny_test_set):
        with Observer.to_directory(tmp_path, meta={"test": "integration"}) as obs:
            engine = InferenceEngine.from_config(
                ServingConfig(
                    model=trained_3c.cdln,
                    delta=0.6,
                    policy=MicroBatchPolicy(max_batch_size=32),
                    observer=obs,
                )
            )
            images = tiny_test_set.images[:96]
            responses = engine.classify_many(images)
            obs.flush()
            yield engine, obs, responses, tmp_path

    def test_one_span_per_request(self, traced):
        engine, _obs, responses, tmp = traced
        spans = read_spans(tmp / "trace.jsonl")
        assert len(spans) == len(responses)
        for span in spans:
            validate_span(span)
        # Spans carry the same exit stages the responses reported.
        by_id = {s["request_id"]: s for s in spans}
        assert len(by_id) == len(spans)

    def test_reconciliation_is_bit_exact(self, traced):
        engine, _obs, _responses, tmp = traced
        total, count = reconcile_ops(read_spans(tmp / "trace.jsonl"))
        snap = engine.metrics.snapshot()
        assert count == snap.requests
        assert total / count == snap.mean_ops  # ==, not approx

    def test_lifecycle_events_recorded(self, traced):
        _engine, obs, _responses, _tmp = traced
        assert "model_registered" in obs.events.kinds()
        assert "model_warm" in obs.events.kinds()

    def test_requests_total_matches_exit_counts(self, traced):
        engine, obs, _responses, _tmp = traced
        snap = engine.metrics.snapshot()
        counter = obs.metrics.counter("requests_total", labels=("exit_stage",))
        for stage, name in enumerate(snap.stage_names):
            assert counter.value(exit_stage=name) == float(
                snap.exit_stage_counts[stage]
            )

    def test_queue_depth_gauge_set(self, traced):
        _engine, obs, _responses, _tmp = traced
        assert obs.metrics.gauge("queue_depth").value() >= 0.0

    def test_hard_cap_trip_event(self, tmp_path, trained_3c, tiny_test_set):
        table = trained_3c.cdln.path_cost_table()
        # A budget below the final stage's cost forces early exits.
        budget = float(table.exit_totals()[-1]) - 1.0
        with Observer.to_directory(tmp_path) as obs:
            engine = InferenceEngine.from_config(
                ServingConfig(
                    model=trained_3c.cdln,
                    controller=DeltaController(hard_ops_budget=budget, delta=0.99),
                    observer=obs,
                )
            )
            engine.classify_many(tiny_test_set.images[:64])
        trips = [e for e in obs.events.tail() if e["kind"] == "hard_cap_trip"]
        assert trips, "a sub-final hard budget must force at least one exit"
        assert all(e["forced"] > 0 for e in trips)

    def test_default_engine_has_null_observer(self, trained_3c):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        assert engine.observer is NULL_OBSERVER
        assert engine.entry.observer is NULL_OBSERVER


# -- CLI -----------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def trace_file(self, tmp_path, trained_3c, tiny_test_set):
        with Observer.to_directory(tmp_path) as obs:
            engine = InferenceEngine.from_config(
                ServingConfig(
                    model=trained_3c.cdln,
                    delta=0.6,
                    policy=MicroBatchPolicy(max_batch_size=32),
                    observer=obs,
                )
            )
            engine.classify_many(tiny_test_set.images[:64])
        return tmp_path / "trace.jsonl", engine

    def test_summary_tables(self, trace_file, capsys):
        path, _engine = trace_file
        assert cli.main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Exit flow" in out
        assert "Trace totals" in out
        assert "Per-stage latency breakdown" in out

    def test_summary_json_reconciles(self, trace_file, capsys):
        path, engine = trace_file
        assert cli.main(["summary", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        snap = engine.metrics.snapshot()
        assert summary["requests"] == snap.requests
        assert summary["totals"]["mean_ops"] == snap.mean_ops

    def test_summary_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        TraceRecorder(path).close()
        assert cli.main(["summary", str(path)]) == 0
        assert "no spans" in capsys.readouterr().out

    def test_tail_respects_n_and_kind(self, trace_file, capsys):
        path, _engine = trace_file
        assert cli.main(["tail", str(path), "-n", "5", "--kind", "span"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line)["kind"] == "span" for line in lines)

    def test_tail_reads_event_files_too(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("model_warm", model="default")
        log.emit("drift_detected", score=0.4)
        log.close()
        assert cli.main(
            ["tail", str(path), "--kind", "drift_detected"]
        ) == 0
        [line] = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["score"] == 0.4

    def test_filter_by_exit_stage(self, trace_file, capsys):
        path, engine = trace_file
        stage_name = engine.metrics.snapshot().stage_names[0]
        assert cli.main(
            ["filter", str(path), "--exit-stage", stage_name, "--limit", "3"]
        ) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert 0 < len(lines) <= 3
        assert all(
            json.loads(line)["exit_stage_name"] == stage_name for line in lines
        )
        assert "matched" in captured.err

    def test_missing_file_is_exit_code_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert cli.main(["summary", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_is_exit_code_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\n')
        assert cli.main(["summary", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestForkSafety:
    """After-fork lock reinitialization (``repro.obs.forksafe``).

    ``fork()`` clones a held ``threading.Lock`` in the locked state with
    no thread left to release it; without the hook, the child's first
    ``record()`` / ``inc()`` deadlocks.
    """

    def test_instances_register_on_construction(self, tmp_path):
        from repro.obs import forksafe

        recorder = TraceRecorder(tmp_path / "t.jsonl")
        registry = MetricsRegistry()
        assert recorder in forksafe._instances
        assert registry in forksafe._instances
        recorder.close()

    def test_reinit_replaces_held_locks(self, tmp_path):
        from repro.obs import forksafe

        recorder = TraceRecorder(tmp_path / "t.jsonl")
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        # Simulate forking while another thread holds both locks.
        recorder._lock.acquire()
        registry._lock.acquire()
        forksafe._reinit_all()
        assert recorder._lock.acquire(blocking=False)
        recorder._lock.release()
        assert registry._lock.acquire(blocking=False)
        registry._lock.release()
        # Families share the registry lock; the fresh one must be rebound
        # into existing families or they stay deadlocked on the stale clone.
        assert counter._lock is registry._lock
        recorder.record({"kind": "span"})  # usable after reinit
        counter.inc()
        recorder.close()

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="platform has no fork()"
    )
    def test_forked_child_does_not_deadlock(self, tmp_path):
        import signal

        registry = MetricsRegistry()
        counter = registry.counter("forked_total")
        registry._lock.acquire()  # the poisoned-at-fork condition
        try:
            pid = os.fork()
        except OSError:
            registry._lock.release()
            pytest.skip("fork not permitted in this environment")
        if pid == 0:  # child
            status = 1
            try:
                signal.alarm(10)  # deadlock => killed by SIGALRM, not hung
                counter.inc()  # would deadlock without the at-fork hook
                status = 0
            finally:
                os._exit(status)
        registry._lock.release()
        _, wait_status = os.waitpid(pid, 0)
        assert os.WIFEXITED(wait_status), "child was killed, not exited"
        assert os.WEXITSTATUS(wait_status) == 0
