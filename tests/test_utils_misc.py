"""Tests for utilities, errors, IDX loading, and the public API surface."""

import gzip
import json
import logging
import struct
import sys

import numpy as np
import pytest

import repro
from repro.data.idx import (
    load_mnist,
    mnist_available,
    read_idx_images,
    read_idx_labels,
)
from repro.errors import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
    SerializationError,
    ShapeError,
)
from repro.utils.logging import (
    JsonLogFormatter,
    enable_console_logging,
    get_logger,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import AsciiBarChart, AsciiTable, format_float
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_rows,
)


class TestErrors:
    def test_hierarchy(self):
        for exc in (ShapeError, ConfigurationError, DataError, SerializationError):
            assert issubclass(exc, ReproError)
        assert issubclass(ShapeError, ValueError)
        assert issubclass(NotFittedError, RuntimeError)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent(self):
        children = spawn_rngs(0, 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(7, 2)]
        b = [g.random() for g in spawn_rngs(7, 2)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_fraction(self):
        assert check_fraction(0.5, "x") == 0.5
        assert check_fraction(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            check_fraction(1.5, "x")
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "x", inclusive=False)
        with pytest.raises(ConfigurationError):
            check_fraction(float("nan"), "x")

    def test_probability_rows(self):
        good = np.array([[0.5, 0.5], [1.0, 0.0]])
        np.testing.assert_array_equal(check_probability_rows(good), good)
        with pytest.raises(ConfigurationError):
            check_probability_rows(np.array([[0.5, 0.6]]))
        with pytest.raises(ConfigurationError):
            check_probability_rows(np.array([0.5, 0.5]))


class TestTables:
    def test_format_float(self):
        assert format_float(2.0) == "2"
        assert format_float(1.912) == "1.912"
        assert format_float(float("nan")) == "nan"

    def test_table_alignment(self):
        table = AsciiTable(["name", "value"], title="t")
        table.add_row(["a", 1.5])
        table.add_row(["long-name", 100])
        text = table.render()
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all box lines equal width

    def test_table_wrong_arity_raises(self):
        table = AsciiTable(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_bar_chart_scales_to_peak(self):
        chart = AsciiBarChart(width=10)
        chart.add_bar("a", 1.0)
        chart.add_bar("b", 2.0)
        lines = chart.render().splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_rejects_negative(self):
        chart = AsciiBarChart()
        with pytest.raises(ValueError):
            chart.add_bar("x", -1.0)

    def test_empty_chart(self):
        assert AsciiBarChart("title").render() == "title"


def _write_idx(tmp_path, images, labels, gz=False):
    img_path = tmp_path / ("imgs.gz" if gz else "imgs")
    lbl_path = tmp_path / ("lbls.gz" if gz else "lbls")
    n, h, w = images.shape
    img_bytes = struct.pack(">IIII", 2051, n, h, w) + images.tobytes()
    lbl_bytes = struct.pack(">II", 2049, n) + labels.tobytes()
    opener = gzip.open if gz else open
    with opener(img_path, "wb") as fh:
        fh.write(img_bytes)
    with opener(lbl_path, "wb") as fh:
        fh.write(lbl_bytes)
    return img_path, lbl_path


class TestIdx:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        images = rng.integers(0, 256, (5, 4, 4), dtype=np.uint8)
        labels = rng.integers(0, 10, 5, dtype=np.uint8)
        img_path, lbl_path = _write_idx(tmp_path, images, labels)
        loaded_images = read_idx_images(img_path)
        loaded_labels = read_idx_labels(lbl_path)
        np.testing.assert_allclose(loaded_images, images / 255.0)
        np.testing.assert_array_equal(loaded_labels, labels)

    def test_gzip_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        images = rng.integers(0, 256, (3, 2, 2), dtype=np.uint8)
        labels = rng.integers(0, 10, 3, dtype=np.uint8)
        img_path, lbl_path = _write_idx(tmp_path, images, labels, gz=True)
        assert read_idx_images(img_path).shape == (3, 2, 2)
        assert read_idx_labels(lbl_path).shape == (3,)

    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(struct.pack(">IIII", 1234, 1, 2, 2) + b"\x00" * 4)
        with pytest.raises(DataError):
            read_idx_images(path)

    def test_truncated_raises(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(struct.pack(">IIII", 2051, 10, 28, 28))
        with pytest.raises(DataError):
            read_idx_images(path)

    def test_mnist_available_false_on_empty_dir(self, tmp_path):
        assert not mnist_available(tmp_path)

    def test_load_mnist_missing_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_mnist(tmp_path)

    def test_load_mnist_full_layout(self, tmp_path):
        rng = np.random.default_rng(2)
        for stem_img, stem_lbl, n in (
            ("train-images-idx3-ubyte", "train-labels-idx1-ubyte", 6),
            ("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", 4),
        ):
            images = rng.integers(0, 256, (n, 28, 28), dtype=np.uint8)
            labels = rng.integers(0, 10, n, dtype=np.uint8)
            (tmp_path / stem_img).write_bytes(
                struct.pack(">IIII", 2051, n, 28, 28) + images.tobytes()
            )
            (tmp_path / stem_lbl).write_bytes(
                struct.pack(">II", 2049, n) + labels.tobytes()
            )
        assert mnist_available(tmp_path)
        train, test = load_mnist(tmp_path)
        assert len(train) == 6 and len(test) == 4
        assert train.image_shape == (1, 28, 28)
        assert np.isnan(train.difficulty).all()


class TestPublicApi:
    def test_version(self):
        assert repro.__version__
        assert "DATE 2016" in repro.PAPER

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_entry_points(self):
        assert callable(repro.train_cdln)
        assert callable(repro.evaluate_cdln)
        assert callable(repro.make_dataset_pair)


class TestLogging:
    """``enable_console_logging`` idempotency is keyed on the attached
    *formatter*, so repeated calls never double-log and switching formats
    swaps the console handler instead of stacking a second one."""

    @pytest.fixture(autouse=True)
    def _clean_handlers(self):
        logger = get_logger()
        before = list(logger.handlers)
        yield
        for handler in list(logger.handlers):
            if handler not in before:
                logger.removeHandler(handler)

    def test_text_idempotent(self):
        logger = get_logger()
        start = len(logger.handlers)
        enable_console_logging()
        enable_console_logging()
        assert len(logger.handlers) == start + 1

    def test_format_switch_replaces_handler(self):
        logger = get_logger()
        start = len(logger.handlers)
        enable_console_logging(fmt="text")
        enable_console_logging(fmt="json")
        assert len(logger.handlers) == start + 1
        ours = [
            h for h in logger.handlers
            if isinstance(h.formatter, JsonLogFormatter)
        ]
        assert len(ours) == 1
        enable_console_logging(fmt="json")  # and json is idempotent too
        assert len(logger.handlers) == start + 1

    def test_application_handlers_untouched(self):
        logger = get_logger()
        app = logging.StreamHandler()
        app.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(app)
        enable_console_logging(fmt="text")
        enable_console_logging(fmt="json")
        assert app in logger.handlers

    def test_json_formatter_output_parses(self):
        record = logging.LogRecord(
            name="repro.test", level=logging.WARNING, pathname=__file__,
            lineno=1, msg="drift score %.2f", args=(0.25,), exc_info=None,
        )
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test"
        assert payload["message"] == "drift score 0.25"
        assert payload["time_unix"] == pytest.approx(record.created)

    def test_json_formatter_includes_exc_info(self):
        try:
            raise ValueError("boom")
        except ValueError:
            record = logging.LogRecord(
                name="repro", level=logging.ERROR, pathname=__file__,
                lineno=1, msg="failed", args=(), exc_info=sys.exc_info(),
            )
        payload = json.loads(JsonLogFormatter().format(record))
        assert "ValueError: boom" in payload["exc_info"]

    def test_invalid_format_rejected(self):
        with pytest.raises(ConfigurationError):
            enable_console_logging(fmt="yaml")

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("serving").name == "repro.serving"
