"""Tests for the 45 nm energy model and the synthesis estimator."""

import numpy as np
import pytest

from repro.cdl.architectures import mnist_2c, mnist_3c
from repro.energy.models import (
    ConditionalEnergyProfile,
    layer_energy,
    network_energy,
    opcount_energy,
)
from repro.energy.report import EnergyReport
from repro.energy.rtl import synthesize_layer, synthesize_network
from repro.energy.technology import TECHNOLOGY_45NM, TechnologyModel
from repro.errors import ConfigurationError
from repro.nn import Conv2D, Dense, MaxPool2D
from repro.ops.counting import OpCount
from repro.ops.profile import ConditionalOpsProfile, PathCostTable


class TestTechnologyModel:
    def test_mac_energy(self):
        tech = TechnologyModel(mult_pj=1.0, add_pj=0.1)
        assert tech.mac_pj == pytest.approx(1.1)

    def test_invalid_values_raise(self):
        with pytest.raises(ConfigurationError):
            TechnologyModel(mult_pj=0.0)
        with pytest.raises(ConfigurationError):
            TechnologyModel(leakage_overhead=1.0)

    def test_voltage_scaling_quadratic(self):
        scaled = TECHNOLOGY_45NM.scaled_voltage(0.45)
        ratio = (0.45 / TECHNOLOGY_45NM.voltage_v) ** 2
        assert scaled.mult_pj == pytest.approx(TECHNOLOGY_45NM.mult_pj * ratio)
        assert scaled.voltage_v == 0.45

    def test_voltage_scaling_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            TECHNOLOGY_45NM.scaled_voltage(0.0)


class TestOpcountEnergy:
    def test_macs_dominate(self):
        tech = TECHNOLOGY_45NM
        only_macs = opcount_energy(OpCount(macs=1000), tech)
        only_adds = opcount_energy(OpCount(adds=1000), tech)
        assert only_macs > 10 * only_adds

    def test_zero_ops_zero_energy(self):
        assert opcount_energy(OpCount.zero()) == 0.0

    def test_leakage_multiplier(self):
        tech = TechnologyModel(leakage_overhead=0.0)
        leaky = TechnologyModel(leakage_overhead=0.5)
        base = opcount_energy(OpCount(macs=100), tech)
        assert opcount_energy(OpCount(macs=100), leaky) == pytest.approx(1.5 * base)


class TestLayerNetworkEnergy:
    def test_layer_energy_positive(self):
        layer = Conv2D(6, 5)
        layer.build((1, 28, 28), np.random.default_rng(0))
        assert layer_energy(layer) > 0

    def test_network_energy_is_sum_of_layers(self):
        net, _ = mnist_2c(rng=0)
        total = network_energy(net)
        assert total == pytest.approx(sum(layer_energy(layer) for layer in net.layers))

    def test_2c_consumes_more_than_3c(self):
        net2, _ = mnist_2c(rng=0)
        net3, _ = mnist_3c(rng=0)
        assert network_energy(net2) > network_energy(net3)


class TestConditionalEnergyProfile:
    def make_profile(self, fixed=0.0):
        table = PathCostTable(
            exit_costs=(OpCount(macs=100), OpCount(macs=500)),
            baseline_cost=OpCount(macs=500),
            stage_names=("O1", "FC"),
        )
        ops = ConditionalOpsProfile.from_exits(
            np.array([0, 0, 1]), np.array([1, 1, 5]), table
        )
        return ConditionalEnergyProfile.from_ops_profile(
            ops, fixed_overhead_pj=fixed
        )

    def test_improvement_matches_ops_without_overhead(self):
        profile = self.make_profile()
        # With MAC-only costs, energy ratio == ops ratio.
        expected = 500 / ((100 + 100 + 500) / 3)
        assert profile.energy_improvement == pytest.approx(expected)

    def test_fixed_overhead_compresses_gain(self):
        plain = self.make_profile(fixed=0.0)
        loaded = self.make_profile(fixed=1e5)
        assert loaded.energy_improvement < plain.energy_improvement
        assert loaded.energy_improvement > 1.0

    def test_per_digit_improvement(self):
        profile = self.make_profile()
        per_digit = profile.per_digit_improvement()
        assert per_digit[1] > per_digit[5]
        assert per_digit[5] == pytest.approx(1.0)

    def test_negative_overhead_raises(self):
        with pytest.raises(ConfigurationError):
            self.make_profile(fixed=-1.0)


class TestSynthesis:
    def test_layer_report_fields(self):
        layer = Conv2D(6, 5, name="C1")
        layer.build((1, 28, 28), np.random.default_rng(0))
        report = synthesize_layer(layer)
        assert report.gate_count > 0
        assert report.area_um2 > 0
        assert report.sram_bits == layer.num_params * 16
        assert report.dynamic_mw > 0
        assert report.leakage_mw > 0
        assert report.cycles_per_input >= 1

    def test_pooling_has_no_sram(self):
        layer = MaxPool2D(2)
        layer.build((6, 24, 24), None)
        assert synthesize_layer(layer).sram_bits == 0

    def test_bigger_layer_bigger_area(self):
        small = Dense(10)
        small.build((50,), np.random.default_rng(0))
        big = Dense(10)
        big.build((500,), np.random.default_rng(0))
        assert synthesize_layer(big).area_um2 > synthesize_layer(small).area_um2

    def test_network_report_aggregates(self):
        net, _ = mnist_2c(rng=0)
        whole = synthesize_network(net, name="mnist_2c")
        parts = [synthesize_layer(layer) for layer in net.layers]
        assert whole.gate_count == sum(p.gate_count for p in parts)
        assert whole.area_um2 == pytest.approx(sum(p.area_um2 for p in parts))

    def test_unbuilt_layer_raises(self):
        with pytest.raises(ConfigurationError):
            synthesize_layer(Dense(5))

    def test_total_power(self):
        layer = Dense(10)
        layer.build((50,), np.random.default_rng(0))
        report = synthesize_layer(layer)
        assert report.total_power_mw == pytest.approx(
            report.dynamic_mw + report.leakage_mw
        )


class TestEnergyReport:
    def test_for_network_and_render(self):
        net, _ = mnist_3c(rng=0)
        report = EnergyReport.for_network(net, name="mnist_3c")
        text = report.render()
        assert "mnist_3c" in text
        assert "OPS / input" in text
        assert report.total_ops > 0
        assert report.energy_pj > 0
