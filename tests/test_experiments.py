"""Tests for the experiment harness: every table/figure runs at tiny scale
and produces structurally sound, renderable results."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    fig5_ops,
    fig6_energy,
    fig7_accuracy_stages,
    fig8_difficulty,
    fig9_stage_sweep,
    fig10_delta_sweep,
    table3_accuracy,
    table4_examples,
)
from repro.experiments.common import Scale, get_datasets, get_trained
from repro.experiments.runner import ALL_EXPERIMENTS, run_all
from repro.experiments.table4_examples import image_to_ascii


class TestScale:
    def test_presets(self):
        assert Scale.tiny().num_train < Scale.small().num_train < Scale.full().num_train

    def test_invalid_raises(self):
        with pytest.raises(ConfigurationError):
            Scale(num_train=0)


class TestCommon:
    def test_dataset_cache_returns_same_object(self, tiny_scale):
        a = get_datasets(tiny_scale, seed=7)
        b = get_datasets(tiny_scale, seed=7)
        assert a[0] is b[0]

    def test_trained_cache_returns_same_object(self, tiny_scale):
        a = get_trained("mnist_3c", tiny_scale, seed=7)
        b = get_trained("mnist_3c", tiny_scale, seed=7)
        assert a is b

    def test_unknown_architecture_raises(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            get_trained("lenet5", tiny_scale)

    def test_bad_attach_raises(self, tiny_scale):
        with pytest.raises(ConfigurationError):
            get_trained("mnist_3c", tiny_scale, attach="some")


class TestFig5(object):
    def test_structure(self, tiny_scale):
        result = fig5_ops.run(tiny_scale, seed=7)
        assert result.improvement_2c.shape == (10,)
        assert result.improvement_3c.shape == (10,)
        assert result.average_2c > 1.0
        assert result.average_3c > 1.0
        assert "Fig. 5" in result.render()


class TestFig6:
    def test_structure(self, tiny_scale):
        result = fig6_energy.run(tiny_scale, seed=7)
        assert result.average_2c > 1.0
        assert result.average_3c > 1.0
        # Energy gain below OPS gain (the paper's overhead effect).
        assert result.average_2c < result.ops_average_2c
        assert result.average_3c < result.ops_average_3c
        assert "Fig. 6" in result.render()


class TestTable3:
    def test_structure(self, tiny_scale):
        result = table3_accuracy.run(tiny_scale, seed=7)
        for value in (
            result.baseline_2c, result.cdln_2c, result.baseline_3c, result.cdln_3c
        ):
            assert 0.0 <= value <= 1.0
        assert "Table III" in result.render()


class TestFig7:
    def test_structure(self, tiny_scale):
        result = fig7_accuracy_stages.run(tiny_scale, seed=7)
        assert len(result.configurations) == 3
        assert result.configurations[0] == "O1-FC"
        assert result.configurations[-1] == "O1-O2-O3-FC"
        # More stages never increases FC traffic.
        fractions = result.final_stage_fractions
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert "Fig. 7" in result.render()


class TestFig8:
    def test_structure(self, tiny_scale):
        result = fig8_difficulty.run(tiny_scale, seed=7)
        assert result.digit_order.shape == (10,)
        # The ordering is by decreasing benefit.
        imp = result.energy_improvement
        assert all(b <= a + 1e-9 for a, b in zip(imp, imp[1:]))
        assert result.easiest_digit != result.hardest_digit
        assert "Fig. 8" in result.render()

    def test_difficulty_quintiles_decrease(self, tiny_scale):
        """Energy benefit must fall as generation difficulty rises: the
        first quintile beats the last."""
        result = fig8_difficulty.run(tiny_scale, seed=7)
        q = result.quintile_energy_improvement
        assert q[0] > q[-1]


class TestFig9:
    def test_structure(self, tiny_scale):
        result = fig9_stage_sweep.run(tiny_scale, seed=7)
        assert len(result.configurations) == 3
        assert 1 <= result.break_even_stage_count <= 3
        assert (result.normalized_ops > 0).all()
        assert "Fig. 9" in result.render()


class TestFig10:
    def test_structure(self, tiny_scale):
        result = fig10_delta_sweep.run(tiny_scale, seed=7)
        assert result.deltas.shape == result.accuracies.shape
        assert result.deltas.shape == result.normalized_ops.shape
        assert 0.0 <= result.best_delta <= 1.0
        assert "Fig. 10" in result.render()

    def test_delta_moves_ops(self, tiny_scale):
        """The knob must actually modulate cost: OPS at the extremes of the
        sweep must differ."""
        result = fig10_delta_sweep.run(tiny_scale, seed=7)
        assert result.normalized_ops.max() > result.normalized_ops.min()


class TestTable4:
    def test_structure(self, tiny_scale):
        result = table4_examples.run(tiny_scale, seed=7)
        assert result.digits == (1, 5)
        assert any(v is not None for v in result.examples.values())
        assert "Table IV" in result.render()

    def test_ascii_rendering(self):
        image = np.zeros((28, 28))
        image[10, :] = 1.0
        art = image_to_ascii(image)
        lines = art.splitlines()
        assert len(lines) == 28
        assert "@" in lines[10]
        assert "@" not in lines[0]


class TestRunner:
    def test_registry_covers_every_table_and_figure(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert names == [
            "Table III", "Fig. 5", "Fig. 6", "Fig. 7",
            "Fig. 8", "Fig. 9", "Fig. 10", "Table IV", "Robustness",
        ]

    def test_run_all_tiny(self, tiny_scale):
        results = run_all(tiny_scale, seed=7)
        assert set(results) == {name for name, _ in ALL_EXPERIMENTS}
        for result in results.values():
            assert isinstance(result.render(), str)
