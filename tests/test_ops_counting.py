"""Tests for operation counting and path cost profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdl.architectures import mnist_2c, mnist_3c
from repro.errors import ConfigurationError
from repro.nn import ActivationLayer, AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D
from repro.ops.counting import (
    OpCount,
    count_layer_ops,
    count_network_ops,
    cumulative_ops,
    network_total_ops,
)
from repro.ops.profile import ConditionalOpsProfile, PathCostTable


class TestOpCount:
    def test_total_weighting(self):
        count = OpCount(macs=10, adds=5, comparisons=3, activations=2)
        assert count.total == 2 * 10 + 5 + 3 + 2

    def test_addition(self):
        total = OpCount(macs=1) + OpCount(adds=2, comparisons=3)
        assert (total.macs, total.adds, total.comparisons) == (1, 2, 3)

    def test_scaled(self):
        half = OpCount(macs=10, adds=4).scaled(0.5)
        assert half.macs == 5 and half.adds == 2

    def test_zero(self):
        assert OpCount.zero().total == 0


class TestLayerCounts:
    def test_conv_exact(self):
        layer = Conv2D(6, 5, activation="sigmoid")
        layer.build((1, 28, 28), np.random.default_rng(0))
        count = count_layer_ops(layer)
        elements = 6 * 24 * 24
        assert count.macs == elements * 1 * 25
        assert count.adds == elements  # bias
        assert count.activations == elements

    def test_conv_identity_activation_free(self):
        layer = Conv2D(2, 3, activation="identity")
        layer.build((1, 8, 8), np.random.default_rng(0))
        assert count_layer_ops(layer).activations == 0

    def test_dense_exact(self):
        layer = Dense(10, activation="sigmoid")
        layer.build((100,), np.random.default_rng(0))
        count = count_layer_ops(layer)
        assert count.macs == 1000
        assert count.adds == 10
        assert count.activations == 10

    def test_dense_softmax_extra_ops(self):
        layer = Dense(10, activation="softmax")
        layer.build((100,), np.random.default_rng(0))
        count = count_layer_ops(layer)
        assert count.activations == 20  # exp + divide
        assert count.adds == 10 + 9  # bias + normalization sum

    def test_maxpool_exact(self):
        layer = MaxPool2D(2)
        layer.build((6, 24, 24), None)
        count = count_layer_ops(layer)
        assert count.comparisons == 6 * 12 * 12 * 3
        assert count.macs == 0

    def test_unit_maxpool_free(self):
        layer = MaxPool2D(1)
        layer.build((9, 3, 3), None)
        assert count_layer_ops(layer).total == 0

    def test_avgpool(self):
        layer = AvgPool2D(2)
        layer.build((4, 8, 8), None)
        count = count_layer_ops(layer)
        assert count.adds == 4 * 4 * 4 * 4
        assert count.comparisons == 0

    def test_flatten_free(self):
        layer = Flatten()
        layer.build((3, 4, 4), None)
        assert count_layer_ops(layer).total == 0

    def test_activation_layer(self):
        layer = ActivationLayer("relu")
        layer.build((5, 2, 2), None)
        assert count_layer_ops(layer).activations == 20

    def test_unbuilt_layer_raises(self):
        with pytest.raises(ConfigurationError):
            count_layer_ops(Dense(3))


class TestNetworkCounts:
    def test_cumulative_monotone(self):
        net, _ = mnist_3c(rng=0)
        totals = [cumulative_ops(net, i).total for i in range(len(net.layers) + 1)]
        assert totals[0] == 0
        assert all(b >= a for a, b in zip(totals, totals[1:]))
        assert totals[-1] == network_total_ops(net)

    def test_count_network_ops_length(self):
        net, _ = mnist_2c(rng=0)
        assert len(count_network_ops(net)) == len(net.layers)

    def test_mnist_2c_heavier_than_3c(self):
        """The paper notes MNIST_2C is the more complex DLN (more neurons
        and synapses) despite having fewer layers."""
        net2, _ = mnist_2c(rng=0)
        net3, _ = mnist_3c(rng=0)
        assert network_total_ops(net2) > network_total_ops(net3)

    def test_cumulative_bad_range(self):
        net, _ = mnist_2c(rng=0)
        with pytest.raises(ConfigurationError):
            cumulative_ops(net, 99)


def _table(totals):
    counts = tuple(OpCount(macs=t) for t in totals)
    return PathCostTable(
        exit_costs=counts,
        baseline_cost=OpCount(macs=totals[-1]),
        stage_names=tuple(f"S{i}" for i in range(len(totals))),
    )


class TestPathCostTable:
    def test_totals(self):
        table = _table([10, 20, 30])
        np.testing.assert_array_equal(table.exit_totals(), [20, 40, 60])

    def test_requires_non_decreasing(self):
        with pytest.raises(ConfigurationError):
            _table([30, 10])

    def test_requires_alignment(self):
        with pytest.raises(ConfigurationError):
            PathCostTable(
                exit_costs=(OpCount(),),
                baseline_cost=OpCount(),
                stage_names=("a", "b"),
            )

    def test_requires_nonempty(self):
        with pytest.raises(ConfigurationError):
            PathCostTable(exit_costs=(), baseline_cost=OpCount(), stage_names=())


class TestConditionalOpsProfile:
    def test_from_exits_basic(self):
        table = _table([10, 50])
        exits = np.array([0, 0, 1, 0])
        labels = np.array([1, 1, 5, 5])
        profile = ConditionalOpsProfile.from_exits(exits, labels, table)
        assert profile.average_ops == pytest.approx((20 * 3 + 100) / 4)
        assert profile.baseline_ops == 100.0
        assert profile.ops_improvement == pytest.approx(400 / 160)

    def test_per_digit_views(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([0, 1]), np.array([1, 5]), table
        )
        per_digit = profile.per_digit_average_ops()
        assert per_digit[1] == 20.0
        assert per_digit[5] == 100.0
        assert np.isnan(per_digit[0])
        improvement = profile.per_digit_improvement()
        assert improvement[1] == pytest.approx(5.0)

    def test_stage_exit_fractions(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([0, 0, 0, 1]), np.zeros(4, dtype=int), table
        )
        np.testing.assert_allclose(profile.stage_exit_fractions(), [0.75, 0.25])

    def test_final_stage_fraction_per_digit(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([0, 1, 1]), np.array([1, 1, 5]), table
        )
        fractions = profile.final_stage_fraction_per_digit()
        assert fractions[1] == pytest.approx(0.5)
        assert fractions[5] == pytest.approx(1.0)

    def test_out_of_range_exit_raises(self):
        with pytest.raises(ConfigurationError):
            ConditionalOpsProfile.from_exits(
                np.array([5]), np.array([0]), _table([10, 20])
            )

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=30))
    def test_average_bounded_by_extremes(self, exits):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array(exits), np.zeros(len(exits), dtype=int), table
        )
        assert 20.0 <= profile.average_ops <= 100.0


class TestProfileCoverage:
    """The remaining profile surface: normalized OPS, improvement algebra,
    mismatched-array validation, and the NaN conventions of the per-digit
    views."""

    def test_normalized_ops_is_inverse_improvement(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([0, 0, 1, 1]), np.zeros(4, dtype=int), table
        )
        assert profile.normalized_ops == pytest.approx(
            1.0 / profile.ops_improvement
        )
        assert profile.normalized_ops == pytest.approx(60.0 / 100.0)

    def test_all_final_exits_mean_no_savings(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([1, 1, 1]), np.zeros(3, dtype=int), table
        )
        assert profile.normalized_ops == pytest.approx(1.0)
        assert profile.ops_improvement == pytest.approx(1.0)
        np.testing.assert_allclose(profile.stage_exit_fractions(), [0.0, 1.0])

    def test_per_digit_improvement_nan_for_absent_digits(self):
        table = _table([10, 50])
        profile = ConditionalOpsProfile.from_exits(
            np.array([0]), np.array([3]), table
        )
        improvement = profile.per_digit_improvement()
        assert improvement[3] == pytest.approx(5.0)
        absent = np.delete(np.arange(10), 3)
        assert np.isnan(improvement[absent]).all()

    def test_mismatched_array_lengths_raise(self):
        table = _table([10, 50])
        with pytest.raises(ConfigurationError):
            ConditionalOpsProfile(
                per_input_ops=np.array([20.0, 100.0]),
                exit_stages=np.array([0]),
                labels=np.array([1, 5]),
                costs=table,
            )
        with pytest.raises(ConfigurationError):
            ConditionalOpsProfile(
                per_input_ops=np.array([20.0]),
                exit_stages=np.array([0]),
                labels=np.array([1, 5]),
                costs=table,
            )

    def test_negative_exit_stage_raises(self):
        with pytest.raises(ConfigurationError):
            ConditionalOpsProfile.from_exits(
                np.array([-1]), np.array([0]), _table([10, 20])
            )

    def test_exit_totals_double_macs(self):
        # OPS = 2 * MACs (multiply + accumulate); the totals table carries
        # the doubled figure the paper quotes.
        table = _table([7, 11])
        np.testing.assert_array_equal(table.exit_totals(), [14, 22])
        assert table.num_stages == 2
