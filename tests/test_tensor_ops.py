"""Tests for im2col/col2im and window math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.tensor_ops import (
    col2im,
    conv_output_size,
    im2col,
    one_hot,
    pad_images,
    sliding_windows,
)


class TestConvOutputSize:
    def test_valid_conv(self):
        assert conv_output_size(28, 5) == 24

    def test_with_padding(self):
        assert conv_output_size(28, 5, padding=2) == 28

    def test_with_stride(self):
        assert conv_output_size(28, 2, stride=2) == 14

    def test_unit_kernel_is_identity(self):
        assert conv_output_size(13, 1) == 13

    def test_kernel_equal_to_size(self):
        assert conv_output_size(5, 5) == 1

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(4, 5)

    def test_bad_geometry_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(28, 0)
        with pytest.raises(ShapeError):
            conv_output_size(28, 3, stride=0)
        with pytest.raises(ShapeError):
            conv_output_size(28, 3, padding=-1)


class TestPadImages:
    def test_zero_padding_is_noop(self):
        x = np.random.default_rng(0).random((2, 3, 4, 4))
        assert pad_images(x, 0) is x

    def test_padding_shape_and_content(self):
        x = np.ones((1, 1, 2, 2))
        padded = pad_images(x, 1)
        assert padded.shape == (1, 1, 4, 4)
        assert padded[0, 0, 0, 0] == 0
        assert padded[0, 0, 1, 1] == 1


class TestSlidingWindows:
    def test_shape(self):
        x = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        view = sliding_windows(x, kernel=3, stride=1)
        assert view.shape == (2, 3, 4, 4, 3, 3)

    def test_window_content(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        view = sliding_windows(x, kernel=2, stride=2)
        np.testing.assert_array_equal(view[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(view[0, 0, 1, 1], [[10, 11], [14, 15]])

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.zeros((3, 4, 4)), kernel=2)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).random((2, 3, 6, 6))
        cols = im2col(x, kernel=3)
        assert cols.shape == (2 * 4 * 4, 3 * 9)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.random((2, 3, 7, 7))
        w = rng.random((4, 3, 3, 3))
        cols = im2col(x, 3)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 5, 5, 4).transpose(0, 3, 1, 2)
        # Naive direct convolution.
        naive = np.zeros((2, 4, 5, 5))
        for n in range(2):
            for m in range(4):
                for i in range(5):
                    for j in range(5):
                        naive[n, m, i, j] = np.sum(
                            x[n, :, i : i + 3, j : j + 3] * w[m]
                        )
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_unit_kernel_round_trip(self):
        x = np.random.default_rng(2).random((3, 2, 5, 5))
        cols = im2col(x, 1)
        np.testing.assert_allclose(
            cols.reshape(3, 5, 5, 2).transpose(0, 3, 1, 2), x
        )


class TestCol2Im:
    def test_adjoint_of_im2col(self):
        """col2im must be the exact adjoint: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(3)
        x = rng.random((2, 3, 6, 6))
        cols = im2col(x, 3)
        y = rng.random(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_non_overlapping_windows_partition(self):
        """With stride == kernel, col2im(im2col(x)) reproduces x exactly."""
        x = np.random.default_rng(4).random((2, 3, 6, 6))
        cols = im2col(x, 2, stride=2)
        np.testing.assert_allclose(col2im(cols, x.shape, 2, stride=2), x)

    def test_overlap_counts(self):
        """Overlapping stride-1 windows accumulate; interior pixels of an
        all-ones column matrix receive kernel^2 contributions."""
        shape = (1, 1, 5, 5)
        cols = np.ones((9, 9))
        image = col2im(cols, shape, 3)
        assert image[0, 0, 2, 2] == 9.0
        assert image[0, 0, 0, 0] == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            col2im(np.ones((5, 5)), (1, 1, 6, 6), 3)

    @settings(max_examples=20, deadline=None)
    @given(
        kernel=st.integers(1, 3),
        size=st.integers(4, 8),
        channels=st.integers(1, 3),
    )
    def test_adjoint_property(self, kernel, size, channels):
        rng = np.random.default_rng(kernel * 100 + size * 10 + channels)
        x = rng.random((1, channels, size, size))
        cols = im2col(x, kernel)
        y = rng.random(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, kernel)))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rows_sum_to_one(self):
        out = one_hot(np.arange(10), 10)
        np.testing.assert_array_equal(out.sum(axis=1), np.ones(10))

    def test_out_of_range_raises(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)
        with pytest.raises(ShapeError):
            one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)
