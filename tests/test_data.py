"""Tests for the dataset substrate: glyphs, rasterizer, augmentation,
containers, and the synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augment import (
    AugmentationParams,
    add_clutter,
    affine_matrix,
    augment_image,
    elastic_deform,
    transform_strokes,
)
from repro.data.dataset import DigitDataset, train_test_split
from repro.data.glyphs import (
    DIGIT_GLYPHS,
    DIGIT_STYLE_VARIABILITY,
    glyph_complexity,
    glyph_strokes,
)
from repro.data.rasterize import rasterize_strokes, strokes_to_segments
from repro.data.synthetic_mnist import (
    SyntheticMnistConfig,
    generate_synthetic_mnist,
    make_dataset_pair,
    render_digit,
)
from repro.errors import ConfigurationError, DataError


class TestGlyphs:
    def test_all_ten_digits_defined(self):
        assert set(DIGIT_GLYPHS) == set(range(10))

    @pytest.mark.parametrize("digit", range(10))
    def test_strokes_are_valid_polylines(self, digit):
        for stroke in glyph_strokes(digit):
            assert stroke.ndim == 2 and stroke.shape[1] == 2
            assert stroke.shape[0] >= 2
            assert stroke.min() >= 0.0 and stroke.max() <= 1.0

    def test_strokes_are_copies(self):
        a = glyph_strokes(3)
        a[0][0, 0] = 99.0
        assert glyph_strokes(3)[0][0, 0] != 99.0

    def test_invalid_digit_raises(self):
        with pytest.raises(DataError):
            glyph_strokes(10)

    def test_digit_one_is_simplest(self):
        """Digit 1's arc length should be the smallest -- the geometric root
        of the paper's 'digit 1 is easiest' observation."""
        lengths = {d: glyph_complexity(d) for d in range(10)}
        assert min(lengths, key=lengths.get) == 1

    def test_variability_covers_all_digits(self):
        assert set(DIGIT_STYLE_VARIABILITY) == set(range(10))
        assert DIGIT_STYLE_VARIABILITY[1] < DIGIT_STYLE_VARIABILITY[5]


class TestRasterize:
    def test_output_shape_and_range(self):
        image = rasterize_strokes(glyph_strokes(0), size=28)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_ink_present(self):
        image = rasterize_strokes(glyph_strokes(8))
        assert image.max() > 0.9
        assert image.mean() > 0.02

    def test_thicker_pen_more_ink(self):
        thin = rasterize_strokes(glyph_strokes(0), thickness=0.03)
        thick = rasterize_strokes(glyph_strokes(0), thickness=0.09)
        assert thick.sum() > thin.sum()

    def test_straight_line_is_straight(self):
        stroke = [np.array([[0.5, 0.1], [0.5, 0.9]])]
        image = rasterize_strokes(stroke, size=28)
        # Ink should concentrate in the central columns.
        col_ink = image.sum(axis=0)
        assert col_ink.argmax() in (13, 14)
        assert col_ink[0] == 0 and col_ink[-1] == 0

    def test_segments_flattening(self):
        p0, p1 = strokes_to_segments(glyph_strokes(4))
        assert p0.shape == p1.shape
        assert p0.shape[0] == sum(len(s) - 1 for s in glyph_strokes(4))

    def test_bad_parameters_raise(self):
        with pytest.raises(DataError):
            rasterize_strokes(glyph_strokes(0), size=2)
        with pytest.raises(DataError):
            rasterize_strokes(glyph_strokes(0), thickness=0.0)
        with pytest.raises(DataError):
            rasterize_strokes([np.zeros((1, 2))])
        with pytest.raises(DataError):
            rasterize_strokes([])


class TestAugment:
    def test_affine_matrix_identity(self):
        np.testing.assert_allclose(affine_matrix(0, 0, 1, 1), np.eye(2))

    def test_affine_matrix_rotation(self):
        m = affine_matrix(90, 0, 1, 1)
        np.testing.assert_allclose(m @ [1, 0], [0, 1], atol=1e-12)

    def test_zero_difficulty_is_nearly_identity(self):
        strokes = glyph_strokes(2)
        out = transform_strokes(strokes, 0.0, AugmentationParams(), np.random.default_rng(0))
        for a, b in zip(strokes, out):
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_difficulty_increases_displacement(self):
        strokes = glyph_strokes(2)
        params = AugmentationParams()
        easy = transform_strokes(strokes, 0.1, params, np.random.default_rng(1))
        hard = transform_strokes(strokes, 0.9, params, np.random.default_rng(1))
        d_easy = max(np.abs(a - b).max() for a, b in zip(strokes, easy))
        d_hard = max(np.abs(a - b).max() for a, b in zip(strokes, hard))
        assert d_hard > d_easy

    def test_strokes_stay_in_canvas(self):
        for seed in range(5):
            out = transform_strokes(
                glyph_strokes(8), 1.0, AugmentationParams(), np.random.default_rng(seed)
            )
            for stroke in out:
                assert stroke.min() >= 0.0 and stroke.max() <= 1.0

    def test_elastic_deform_zero_alpha_is_identity(self):
        image = np.random.default_rng(0).random((28, 28))
        np.testing.assert_array_equal(
            elastic_deform(image, 0.0, 2.0, np.random.default_rng(1)), image
        )

    def test_elastic_deform_changes_image(self):
        image = rasterize_strokes(glyph_strokes(3))
        out = elastic_deform(image, 5.0, 2.0, np.random.default_rng(1))
        assert not np.allclose(out, image)

    def test_clutter_adds_intensity(self):
        image = np.zeros((28, 28))
        out = add_clutter(image, 3, 0.5, np.random.default_rng(0))
        assert out.sum() > 0
        assert out.max() <= 1.0

    def test_augment_image_zero_difficulty(self):
        image = rasterize_strokes(glyph_strokes(7))
        out = augment_image(image, 0.0, AugmentationParams(), 0)
        np.testing.assert_allclose(out, image, atol=1e-9)

    def test_augment_image_stays_in_range(self):
        image = rasterize_strokes(glyph_strokes(7))
        out = augment_image(image, 1.0, AugmentationParams(), 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_invalid_difficulty_raises(self):
        image = np.zeros((28, 28))
        with pytest.raises(ConfigurationError):
            augment_image(image, 1.5, AugmentationParams(), 0)


class TestDigitDataset:
    def make(self, n=20):
        rng = np.random.default_rng(0)
        return DigitDataset(
            images=rng.random((n, 1, 8, 8)),
            labels=rng.integers(0, 10, n),
            difficulty=rng.random(n),
        )

    def test_basic_properties(self):
        ds = self.make()
        assert len(ds) == 20
        assert ds.image_shape == (1, 8, 8)

    def test_3d_images_get_channel_axis(self):
        ds = DigitDataset(np.zeros((5, 8, 8)), np.zeros(5, dtype=int))
        assert ds.images.shape == (5, 1, 8, 8)

    def test_label_range_checked(self):
        with pytest.raises(DataError):
            DigitDataset(np.zeros((2, 1, 8, 8)), np.array([0, 10]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataError):
            DigitDataset(np.zeros((3, 1, 8, 8)), np.zeros(2, dtype=int))

    def test_subset(self):
        ds = self.make()
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 7]])

    def test_for_class(self):
        ds = self.make()
        for digit in range(10):
            sub = ds.for_class(digit)
            assert (sub.labels == digit).all()

    def test_class_counts_sum(self):
        ds = self.make()
        assert ds.class_counts().sum() == len(ds)

    def test_batches_cover_everything(self):
        ds = self.make(23)
        total = sum(len(y) for _, y in ds.batches(5))
        assert total == 23

    def test_shuffled_preserves_pairs(self):
        ds = self.make()
        tagged = {tuple(img.ravel()[:3]): lbl for img, lbl in zip(ds.images, ds.labels)}
        shuffled = ds.shuffled(rng=1)
        for img, lbl in zip(shuffled.images, shuffled.labels):
            assert tagged[tuple(img.ravel()[:3])] == lbl

    def test_train_test_split_disjoint_and_complete(self):
        ds = self.make(50)
        train, test = train_test_split(ds, test_fraction=0.2, rng=0)
        assert len(train) + len(test) == 50
        assert len(test) == 10

    def test_split_bad_fraction_raises(self):
        with pytest.raises(DataError):
            train_test_split(self.make(), test_fraction=1.5)


class TestSyntheticMnist:
    def test_deterministic_generation(self):
        a = generate_synthetic_mnist(30, rng=42)
        b = generate_synthetic_mnist(30, rng=42)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_synthetic_mnist(30, rng=1)
        b = generate_synthetic_mnist(30, rng=2)
        assert not np.array_equal(a.images, b.images)

    def test_shapes_and_metadata(self):
        ds = generate_synthetic_mnist(25, rng=0)
        assert ds.images.shape == (25, 1, 28, 28)
        assert np.isfinite(ds.difficulty).all()
        assert ds.difficulty.min() >= 0 and ds.difficulty.max() <= 1

    def test_class_balance_respected(self):
        balance = np.zeros(10)
        balance[3] = 1.0
        ds = generate_synthetic_mnist(20, rng=0, class_balance=balance)
        assert (ds.labels == 3).all()

    def test_bad_class_balance_raises(self):
        with pytest.raises(ConfigurationError):
            generate_synthetic_mnist(10, class_balance=np.zeros(10))

    def test_digit_one_capped_difficulty(self):
        """Class variability caps digit-1 difficulty below digit-5's max."""
        ds = generate_synthetic_mnist(600, rng=0)
        ones = ds.difficulty[ds.labels == 1]
        fives = ds.difficulty[ds.labels == 5]
        assert ones.max() < fives.max()

    def test_render_digit_harder_means_more_distortion(self):
        config = SyntheticMnistConfig()
        clean = render_digit(5, 0.0, config, 0)
        messy = render_digit(5, 1.0, config, 0)
        base = rasterize_strokes(
            glyph_strokes(5),
            thickness=config.base_thickness,
            softness=config.base_softness,
        )
        assert np.abs(messy - base).mean() > np.abs(clean - base).mean()

    def test_make_dataset_pair_disjoint_names(self):
        train, test = make_dataset_pair(20, 10, rng=0)
        assert len(train) == 20 and len(test) == 10
        assert train.name != test.name

    def test_bad_beta_raises(self):
        with pytest.raises(ConfigurationError):
            SyntheticMnistConfig(difficulty_alpha=0.0)

    def test_variability_must_cover_digits(self):
        with pytest.raises(ConfigurationError):
            SyntheticMnistConfig(class_variability={0: 1.0})

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 9), st.floats(0, 1))
    def test_render_digit_always_valid(self, digit, difficulty):
        image = render_digit(digit, difficulty, SyntheticMnistConfig(), 7)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 1.0
