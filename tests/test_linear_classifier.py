"""Tests for the CDL linear classifiers (LMS / ridge / softmax rules)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdl.linear_classifier import LinearClassifier
from repro.errors import ConfigurationError, NotFittedError, ShapeError


def _separable(n=150, dim=6, classes=3, seed=0, margin=4.0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, n)
    centers = rng.normal(size=(classes, dim)) * margin
    features = centers[labels] + rng.normal(0, 0.3, size=(n, dim))
    return features, labels


class TestConstruction:
    def test_bad_rule_raises(self):
        with pytest.raises(ConfigurationError):
            LinearClassifier(10, rule="perceptron")

    def test_bad_learning_rate_raises(self):
        with pytest.raises(ConfigurationError):
            LinearClassifier(10, learning_rate=0.0)

    def test_bad_l2_raises(self):
        with pytest.raises(ConfigurationError):
            LinearClassifier(10, l2=-0.1)

    def test_unfitted_use_raises(self):
        clf = LinearClassifier(3)
        with pytest.raises(NotFittedError):
            clf.scores(np.zeros((1, 4)))
        with pytest.raises(NotFittedError):
            clf.op_cost()


@pytest.mark.parametrize("rule", ["lms", "ridge", "softmax"])
class TestAllRules:
    def test_learns_separable_data(self, rule):
        x, y = _separable()
        clf = LinearClassifier(3, rule=rule, epochs=30, rng=0).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.95

    def test_scores_shape(self, rule):
        x, y = _separable()
        clf = LinearClassifier(3, rule=rule, rng=0).fit(x, y)
        assert clf.scores(x).shape == (len(x), 3)

    def test_proba_rows_sum_to_one(self, rule):
        x, y = _separable()
        clf = LinearClassifier(3, rule=rule, rng=0).fit(x, y)
        np.testing.assert_allclose(
            clf.predict_proba(x).sum(axis=1),
            1.0,
            rtol=1e-9 if clf.weights.dtype == np.float64 else 1e-5,
        )

    def test_confidence_scores_in_unit_interval(self, rule):
        x, y = _separable()
        clf = LinearClassifier(3, rule=rule, rng=0).fit(x, y)
        conf = clf.confidence_scores(x)
        assert conf.min() >= 0.0 and conf.max() <= 1.0


class TestLmsRule:
    def test_stable_on_large_feature_scales(self):
        """NLMS normalization must keep the rule stable even when features
        are large and high-dimensional (the raw delta rule diverges)."""
        rng = np.random.default_rng(0)
        x = rng.random((100, 500)) * 50.0
        y = rng.integers(0, 10, 100)
        clf = LinearClassifier(10, rule="lms", epochs=5, rng=1).fit(x, y)
        assert np.isfinite(clf.weights).all()
        assert np.isfinite(clf.scores(x)).all()

    def test_converges_toward_ridge_solution(self):
        """Enough LMS epochs approach the closed-form global minimum the
        paper says the linear classifiers converge to."""
        x, y = _separable(n=300, seed=2)
        lms = LinearClassifier(3, rule="lms", epochs=200, rng=0).fit(x, y)
        ridge = LinearClassifier(3, rule="ridge", rng=0).fit(x, y)
        # LMS approaches (never beats by much, never strays far from) the
        # closed-form optimum; both land at tiny residual error here.
        assert lms.mean_squared_error(x, y) <= max(
            5.0 * ridge.mean_squared_error(x, y), 0.01
        )


class TestRidgeRule:
    def test_deterministic(self):
        x, y = _separable()
        a = LinearClassifier(3, rule="ridge", rng=0).fit(x, y)
        b = LinearClassifier(3, rule="ridge", rng=99).fit(x, y)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_stronger_l2_shrinks_weights(self):
        x, y = _separable()
        loose = LinearClassifier(3, rule="ridge", l2=1e-4, rng=0).fit(x, y)
        tight = LinearClassifier(3, rule="ridge", l2=10.0, rng=0).fit(x, y)
        assert np.abs(tight.weights).sum() < np.abs(loose.weights).sum()

    def test_is_least_squares_optimum(self):
        """No small perturbation of the ridge solution may reduce the
        regularized LMS objective."""
        x, y = _separable(n=80, dim=4)
        clf = LinearClassifier(3, rule="ridge", l2=0.01, rng=0).fit(x, y)

        def objective(w):
            from repro.nn.tensor_ops import one_hot

            t = one_hot(y, 3)
            pred = x @ w.T + clf.bias
            lam = 0.01 * len(x)
            return float(np.sum((pred - t) ** 2) + lam * np.sum(w * w))

        base = objective(clf.weights)
        rng = np.random.default_rng(5)
        for _ in range(10):
            perturbed = clf.weights + rng.normal(0, 1e-3, clf.weights.shape)
            assert objective(perturbed) >= base - 1e-9


class TestOpCost:
    def test_exact_counts(self):
        x, y = _separable(dim=6)
        clf = LinearClassifier(3, rng=0).fit(x, y)
        cost = clf.op_cost()
        assert cost.macs == 3 * 6
        assert cost.adds == 3 + 2
        assert cost.comparisons == 3
        assert cost.activations == 6

    def test_cost_scales_with_input_dim(self):
        x1, y1 = _separable(dim=4)
        x2, y2 = _separable(dim=40)
        small = LinearClassifier(3, rng=0).fit(x1, y1).op_cost()
        big = LinearClassifier(3, rng=0).fit(x2, y2).op_cost()
        assert big.total > small.total


class TestValidation:
    def test_wrong_feature_dim_raises(self):
        x, y = _separable(dim=6)
        clf = LinearClassifier(3, rng=0).fit(x, y)
        with pytest.raises(ShapeError):
            clf.scores(np.zeros((2, 7)))

    def test_empty_fit_raises(self):
        with pytest.raises(ShapeError):
            LinearClassifier(3).fit(np.zeros((0, 4)), np.zeros(0, dtype=int))

    def test_3d_features_raise(self):
        with pytest.raises(ShapeError):
            LinearClassifier(3).fit(np.zeros((5, 2, 2)), np.zeros(5, dtype=int))

    def test_mismatched_labels_raise(self):
        with pytest.raises(ShapeError):
            LinearClassifier(3).fit(np.zeros((5, 4)), np.zeros(4, dtype=int))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(5, 30))
    def test_fit_predict_roundtrip_shapes(self, classes, n):
        rng = np.random.default_rng(classes * n)
        x = rng.random((n, 8))
        y = rng.integers(0, classes, n)
        clf = LinearClassifier(classes, rule="ridge", rng=0).fit(x, y)
        assert clf.predict(x).shape == (n,)
        assert set(clf.predict(x)) <= set(range(classes))
