"""Tests for repro.serving.regimes and the drift-rate signal: unknown-regime
mini-calibration, the v2 table schema, rate-triggered retargeting, and the
overhead accounting that keeps learning-vs-frozen comparisons fair.

The property/differential layer the closed-loop learning PR is pinned by:

* a learned table is a strict superset of the old one, and the learned
  entry's predicted mean-OPS agrees with a fresh offline calibration over
  the *same* window images (differential oracle);
* the table artifact rewrite is atomic -- a crash injected mid-rename
  leaves the previous file loadable, never a truncated one;
* v1 artifacts load forever and round-trip losslessly through v2;
* gradual ramps fire the rate trigger within a pinned batch budget across
  seeds and slopes, while clean replays never false-trigger;
* every mini-calibration OP lands in ``overhead_ops``, never in served
  ``mean_ops`` -- on the single-engine replay path and the fabric path.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    DriftSchedule,
    Scenario,
    budgeted_drift_replay,
)
from repro.serving import (
    AdaptiveDeltaPolicy,
    DeltaController,
    DriftDetector,
    InferenceEngine,
    LearningDeltaPolicy,
    MicroBatchPolicy,
    MiniCalibrator,
    OperatingTable,
    RegimeEntry,
    RegimeSignature,
    ResiliencePolicy,
    ServingConfig,
    robust_slope,
)
from repro.serving.adaptive import TABLE_SCHEMA, TABLE_SCHEMA_V1
from repro.serving.fabric import FabricConfig, ServingFabric
from repro.serving.regimes import LEARNED_PREFIX, next_learned_name

DELTA = 0.6
NOISE = Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),))

#: Rate-detector configuration the ramp tests pin (float64 tier-1 dtype;
#: the float32 bench equivalent lives in repro.bench.suites.adaptive).
RATE_KWARGS = {"rate_threshold": 0.008, "rate_window": 6, "rate_patience": 2}
#: Every seeded ramp below must rate-fire within this many batches.
DETECTION_BUDGET = 38


@pytest.fixture(scope="module")
def regime_setup(trained_3c_all_taps, tiny_test_set):
    """A clean-only table: the deployment whose live mix was never
    characterized, so any shifted traffic is an unknown regime."""
    cdln = trained_3c_all_taps.cdln
    table = OperatingTable.build(
        cdln, tiny_test_set, [Scenario(name="clean")], reference_delta=DELTA
    )
    return cdln, tiny_test_set, table


def fresh_copy(table: OperatingTable) -> OperatingTable:
    """An independent table the test can mutate (learning grows in place)."""
    return OperatingTable.from_dict(json.loads(json.dumps(table.to_dict())))


def learning_engine(cdln, table, **policy_kwargs) -> InferenceEngine:
    target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
    return InferenceEngine.from_config(
        ServingConfig(
            model=cdln,
            controller=DeltaController(target_mean_ops=target),
            adaptive=LearningDeltaPolicy(table, **policy_kwargs),
        )
    )


def far_signature(like: RegimeSignature) -> RegimeSignature:
    """A signature no tabulated regime matches: all mass on the deepest
    exit, stage-0 confidence collapsed."""
    fractions = np.zeros_like(np.asarray(like.exit_fractions))
    fractions[-1] = 1.0
    quantiles = np.full_like(np.asarray(like.stage0_quantiles), 0.1)
    return RegimeSignature(fractions, quantiles, count=256)


def drive_until_event(engine, images, *, batches=8, batch_size=32):
    """Serve traffic until the adaptive policy emits a *new* retarget
    event; returns the number of batches served."""
    adaptive = engine.adaptive
    start = len(adaptive.events)
    for i in range(batches):
        lo = (i * batch_size) % max(len(images) - batch_size, 1)
        engine.classify_many(images[lo : lo + batch_size])
        if len(adaptive.events) > start:
            return i + 1
    return batches


class TestNextLearnedName:
    def test_first_name(self):
        assert next_learned_name([]) == f"{LEARNED_PREFIX}_0"
        assert next_learned_name(["clean", "noise"]) == f"{LEARNED_PREFIX}_0"

    def test_fills_first_gap(self):
        taken = [f"{LEARNED_PREFIX}_0", f"{LEARNED_PREFIX}_2"]
        assert next_learned_name(taken) == f"{LEARNED_PREFIX}_1"

    def test_sequential(self):
        names: list[str] = []
        for _ in range(3):
            names.append(next_learned_name(names))
        assert names == [f"{LEARNED_PREFIX}_{i}" for i in range(3)]


class TestMiniCalibrator:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_samples"):
            MiniCalibrator(max_samples=0)
        with pytest.raises(ConfigurationError, match="batch_size"):
            MiniCalibrator(batch_size=0)
        with pytest.raises(ConfigurationError, match="grid"):
            MiniCalibrator(deltas=())

    def test_zero_images_refused(self, regime_setup):
        cdln, base, _ = regime_setup
        calibrator = MiniCalibrator(max_samples=8)
        with pytest.raises(ConfigurationError, match="zero images"):
            calibrator.fit(
                cdln, base.images[:0], name="x", reference_delta=DELTA
            )

    def test_fit_shape_and_truncation(self, regime_setup):
        cdln, base, _ = regime_setup
        calibrator = MiniCalibrator(max_samples=24, deltas=(0.4, DELTA, 0.8))
        calibration = calibrator.fit(
            cdln, base.images[:64], name="learned_0", reference_delta=DELTA
        )
        entry = calibration.entry
        # Newest traffic wins: the window is truncated to max_samples.
        assert calibration.num_samples == 24
        assert entry.num_samples == 24
        assert entry.learned
        assert entry.name == "learned_0"
        assert [p.delta for p in entry.points] == [0.4, DELTA, 0.8]
        # Live traffic is unlabeled: no accuracy estimate, ever.
        assert all(np.isnan(p.accuracy) for p in entry.points)
        # The pass's cost is the full-depth price of every scored image.
        full_pass = float(cdln.path_cost_table().exit_totals()[-1])
        assert calibration.overhead_ops == pytest.approx(24 * full_pass)

    def test_differential_oracle_against_offline_calibration(
        self, regime_setup
    ):
        """The learned curve must agree with a fresh offline calibration
        pass (DeltaController.calibrate) over the same window images."""
        cdln, base, _ = regime_setup
        window = base.images[:48]
        grid = (0.3, 0.5, DELTA, 0.7, 0.9)
        calibrator = MiniCalibrator(max_samples=len(window), deltas=grid)
        entry = calibrator.fit(
            cdln, window, name="learned_0", reference_delta=DELTA
        ).entry
        controller = DeltaController(target_mean_ops=1.0, delta_grid=grid)
        offline = controller.calibrate(cdln, window)
        for delta in grid:
            assert entry.point_for_delta(delta).mean_ops == pytest.approx(
                offline.point_for_delta(delta).mean_ops, rel=1e-9
            )


class TestLearningPolicy:
    def test_validation(self, regime_setup):
        _, _, table = regime_setup
        with pytest.raises(ConfigurationError, match="unknown_distance"):
            LearningDeltaPolicy(fresh_copy(table), unknown_distance=0.0)
        with pytest.raises(ConfigurationError, match="learn_batches"):
            LearningDeltaPolicy(fresh_copy(table), learn_batches=0)
        with pytest.raises(ConfigurationError, match="max_learned"):
            LearningDeltaPolicy(fresh_copy(table), max_learned=0)

    def test_window_buffer_is_bounded(self, regime_setup):
        _, base, table = regime_setup
        policy = LearningDeltaPolicy(fresh_copy(table), learn_batches=2)
        assert policy.window_images() is None
        for i in range(4):
            policy.record_batch_images(base.images[i * 8 : (i + 1) * 8])
        window = policy.window_images()
        # Only the newest learn_batches batches survive.
        assert window.shape[0] == 16
        np.testing.assert_array_equal(window, base.images[16:32])

    def test_unknown_regime_learns_and_grows_table(self, regime_setup):
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        before = set(table.regime_names)
        before_payload = {
            name: table.entry(name).to_dict() for name in before
        }
        engine = learning_engine(
            cdln,
            table,
            unknown_distance=0.05,
            calibrator=MiniCalibrator(max_samples=32),
        )
        shifted = NOISE.realize(base).images
        drive_until_event(engine, shifted)
        adaptive = engine.adaptive
        assert adaptive.learned == ["learned_0"]
        assert adaptive.current_regime == "learned_0"
        event = adaptive.events[-1]
        assert event.learned
        assert event.regime == "learned_0"
        assert event.distance > 0.05
        # Superset property: every old regime survives byte-identical.
        after = set(table.regime_names)
        assert before < after
        assert after - before == {"learned_0"}
        for name in before:
            assert table.entry(name).to_dict() == before_payload[name]
        assert table.entry("learned_0").learned

    def test_learned_curve_matches_fresh_offline_calibration(
        self, regime_setup
    ):
        """Differential oracle through the live path: the regime the
        engine learned must predict the same mean-OPS as an offline
        calibration over the very window it was fitted on."""
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        engine = learning_engine(
            cdln,
            table,
            unknown_distance=0.05,
            calibrator=MiniCalibrator(max_samples=64),
        )
        shifted = NOISE.realize(base).images
        drive_until_event(engine, shifted)
        window = engine.adaptive.window_images()
        entry = table.entry("learned_0")
        assert window.shape[0] >= entry.num_samples
        controller = DeltaController(
            target_mean_ops=1.0,
            delta_grid=engine.adaptive.calibrator.deltas,
        )
        offline = controller.calibrate(cdln, window[-entry.num_samples :])
        for point in entry.points:
            assert point.mean_ops == pytest.approx(
                offline.point_for_delta(point.delta).mean_ops, rel=1e-9
            )

    def test_within_cutoff_is_plain_retarget(self, regime_setup):
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        # A generous cutoff: even shifted traffic matches "clean".
        engine = learning_engine(cdln, table, unknown_distance=100.0)
        shifted = NOISE.realize(base).images
        drive_until_event(engine, shifted)
        adaptive = engine.adaptive
        assert adaptive.learned == []
        assert adaptive.overhead_ops_total == 0.0
        assert len(table) == 1
        assert adaptive.events and not adaptive.events[-1].learned

    def test_full_table_degrades_to_nearest(self, regime_setup):
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        engine = learning_engine(
            cdln,
            table,
            unknown_distance=0.05,
            max_learned=1,
            calibrator=MiniCalibrator(max_samples=16),
        )
        shifted = NOISE.realize(base).images
        drive_until_event(engine, shifted)
        assert engine.adaptive.learned == ["learned_0"]
        # Swing the traffic back to clean: against the (noise-shaped)
        # learned reference that is drift again, but with the table full
        # the policy must degrade to nearest-match, not grow.
        drive_until_event(engine, base.images, batches=12)
        assert len(engine.adaptive.learned) == 1
        assert len(table) == 2

    def test_persists_atomically_when_table_path_set(
        self, regime_setup, tmp_path
    ):
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        path = tmp_path / "table.json"
        table.save(path)
        engine = learning_engine(
            cdln,
            table,
            unknown_distance=0.05,
            table_path=path,
            calibrator=MiniCalibrator(max_samples=16),
        )
        drive_until_event(engine, NOISE.realize(base).images)
        assert engine.adaptive.learned == ["learned_0"]
        reloaded = OperatingTable.load(path)
        assert set(reloaded.regime_names) == set(table.regime_names)
        assert reloaded.entry("learned_0").learned
        # No stray temporaries left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["table.json"]


class TestAtomicRewrite:
    def test_crash_during_rename_leaves_old_table(
        self, regime_setup, tmp_path, monkeypatch
    ):
        """A crash injected mid-rewrite must leave the previous artifact
        loadable -- regime learning rewrites it while serving is live."""
        _, _, table = regime_setup
        path = tmp_path / "table.json"
        table.save(path)
        before = path.read_text()
        grown = fresh_copy(table)
        grown.add_regime(
            RegimeEntry.from_dict(
                "learned_0",
                {**table.entry("clean").to_dict(), "learned": True},
            )
        )

        def crash(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated"):
            grown.save(path)
        monkeypatch.undo()
        # The target is untouched and still loads; the partial write was
        # confined to a temporary that save() cleaned up.
        assert path.read_text() == before
        assert set(OperatingTable.load(path).regime_names) == {"clean"}
        assert [p.name for p in tmp_path.iterdir()] == ["table.json"]

    def test_save_load_round_trip(self, regime_setup, tmp_path):
        _, _, table = regime_setup
        path = table.save(tmp_path / "table.json")
        assert OperatingTable.load(path).to_dict() == table.to_dict()


class TestSchemaVersions:
    def test_current_schema_is_v2(self, regime_setup):
        _, _, table = regime_setup
        payload = table.to_dict()
        assert payload["schema"] == TABLE_SCHEMA
        for entry in payload["regimes"].values():
            assert entry["learned"] is False

    def test_v1_round_trip_is_lossless(self, regime_setup):
        """A v1 artifact (no ``learned`` flags) loads forever, defaults
        everything to offline-built, and re-saves as identical v2."""
        _, _, table = regime_setup
        v1 = json.loads(json.dumps(table.to_dict()))
        v1["schema"] = TABLE_SCHEMA_V1
        for entry in v1["regimes"].values():
            del entry["learned"]
        loaded = OperatingTable.from_dict(v1)
        assert not any(
            loaded.entry(name).learned for name in loaded.regime_names
        )
        assert loaded.to_dict() == table.to_dict()

    def test_learned_flag_survives_round_trip(self, regime_setup):
        _, _, table = regime_setup
        grown = fresh_copy(table)
        payload = {**table.entry("clean").to_dict(), "learned": True}
        grown.add_regime(RegimeEntry.from_dict("learned_0", payload))
        again = OperatingTable.from_dict(
            json.loads(json.dumps(grown.to_dict()))
        )
        assert again.entry("learned_0").learned
        assert not again.entry("clean").learned

    def test_nan_accuracy_round_trips_through_null(self, regime_setup):
        """Learned points carry accuracy NaN (live traffic is unlabeled);
        that must serialize as JSON null, not the non-standard NaN token."""
        cdln, base, table = regime_setup
        calibration = MiniCalibrator(max_samples=8).fit(
            cdln, base.images[:8], name="learned_0", reference_delta=DELTA
        )
        grown = fresh_copy(table)
        grown.add_regime(calibration.entry)
        text = json.dumps(grown.to_dict(), allow_nan=False)  # strict JSON
        again = OperatingTable.from_dict(json.loads(text))
        assert all(
            np.isnan(p.accuracy) for p in again.entry("learned_0").points
        )

    def test_unknown_schema_refused(self):
        with pytest.raises(ConfigurationError, match="schema"):
            OperatingTable.from_dict({"schema": "repro.operating_table/v99"})


class TestMatchTieHandling:
    """Regression: equidistant regimes must resolve to the
    lexicographically lowest name, never to insertion order."""

    def _twin_table(self, table: OperatingTable, first: str, second: str):
        clean = table.entry("clean").to_dict()
        payload = json.loads(json.dumps(table.to_dict()))
        payload["regimes"] = {first: clean, second: clean}
        payload["reference_regime"] = first
        return OperatingTable.from_dict(payload)

    def test_tie_breaks_to_lowest_name(self, regime_setup):
        _, _, table = regime_setup
        # Same two identical entries in both insertion orders.
        for order in (("zz", "aa"), ("aa", "zz")):
            twins = self._twin_table(table, *order)
            signature = twins.entry("aa").signature_at(DELTA)
            name, distance = twins.match(signature, delta=DELTA)
            assert name == "aa", f"insertion order {order} leaked into match"
            assert distance == pytest.approx(0.0)

    def test_cutoff_returns_none(self, regime_setup):
        _, _, table = regime_setup
        signature = far_signature(table.entry("clean").signature_at(DELTA))
        name, distance = table.match(signature, delta=DELTA, max_distance=0.5)
        assert name is None
        assert distance > 0.5
        # Without the cutoff the same lookup snaps to the nearest entry.
        assert table.match(signature, delta=DELTA)[0] == "clean"


class TestRobustSlope:
    def test_matches_polyfit_on_linear_series(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            slope = rng.uniform(-0.05, 0.05)
            intercept = rng.uniform(0.0, 0.5)
            n = int(rng.integers(3, 12))
            series = intercept + slope * np.arange(n)
            fitted = np.polyfit(np.arange(n), series, 1)[0]
            assert robust_slope(series) == pytest.approx(fitted, abs=1e-12)
            assert robust_slope(series) == pytest.approx(slope, abs=1e-12)

    def test_single_outlier_cannot_swing_it(self):
        series = 0.1 + 0.01 * np.arange(9)
        spiked = series.copy()
        spiked[-1] += 5.0
        # Least squares is dragged far off the true slope by one spike...
        assert abs(np.polyfit(np.arange(9), spiked, 1)[0] - 0.01) > 0.05
        # ...the median-of-pairwise-slopes estimate barely moves.
        assert robust_slope(spiked) == pytest.approx(0.01, abs=0.005)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="slope"):
            robust_slope([0.1])
        with pytest.raises(ConfigurationError, match="slope"):
            robust_slope(np.zeros((2, 2)))


class TestRateDetectorUnit:
    def _detector(self, reference, **kwargs):
        defaults = dict(
            window=2,
            min_observations=1,
            threshold=0.25,
            rate_threshold=0.01,
            rate_window=3,
            rate_patience=2,
        )
        defaults.update(kwargs)
        return DriftDetector(reference, **defaults)

    def _signature_at(self, reference, fraction):
        """Interpolate the reference toward a shifted regime; the drift
        score grows monotonically with ``fraction``."""
        shifted = far_signature(reference)

        def mix(a, b):
            return (1 - fraction) * np.asarray(a) + fraction * np.asarray(b)

        return RegimeSignature(
            mix(reference.exit_fractions, shifted.exit_fractions),
            mix(reference.stage0_quantiles, shifted.stage0_quantiles),
            count=256,
        )

    def _reference(self):
        return RegimeSignature(
            np.array([0.7, 0.2, 0.1]),
            np.linspace(0.5, 0.9, 9),
            count=4096,
        )

    def test_ramp_fires_rate_before_level(self):
        reference = self._reference()
        detector = self._detector(reference)
        event = None
        for step in range(40):
            event = detector.observe_signature(
                self._signature_at(reference, 0.008 * step)
            )
            if event is not None:
                break
        assert event is not None and event.trigger == "rate"
        # The level trigger alone would have needed score >= 0.25; the
        # ramp was caught while still well below it.
        assert event.score < detector.threshold

    def test_rate_params_validation(self):
        reference = self._reference()
        with pytest.raises(ConfigurationError, match="rate_threshold"):
            self._detector(reference, rate_threshold=0.0)
        with pytest.raises(ConfigurationError, match="rate_window"):
            self._detector(reference, rate_window=2)
        with pytest.raises(ConfigurationError, match="rate_patience"):
            self._detector(reference, rate_patience=0)
        with pytest.raises(ConfigurationError, match="rate_floor_fraction"):
            self._detector(reference, rate_floor_fraction=1.5)

    def test_rate_floor_gates_low_level_slopes(self):
        """A climbing slope whose level sits below the elevation floor
        must not count toward the rate streak -- that is what keeps a
        stationary noisy score from reading as a ramp."""
        reference = self._reference()
        gated = self._detector(reference, rate_floor_fraction=1.0)
        open_floor = self._detector(reference, rate_floor_fraction=0.0)
        fired_open = False
        for step in range(40):
            signature = self._signature_at(reference, 0.008 * step)
            assert gated.observe_signature(signature) is None or (
                gated.last_score >= gated.threshold
            ), "gated detector may only fire at full level"
            if open_floor.armed:
                fired_open = (
                    open_floor.observe_signature(signature) is not None
                    or fired_open
                )
        assert fired_open, "floor 0 must let the same ramp rate-fire"

    def test_rearm_restores_rate_streak(self):
        reference = self._reference()
        detector = self._detector(reference)
        for step in range(40):
            if detector.observe_signature(
                self._signature_at(reference, 0.008 * step)
            ):
                break
        assert not detector.armed
        detector.rearm()
        assert detector.armed
        # The streak machinery restarts cleanly: another ramp re-fires.
        fired = False
        for step in range(40):
            if detector.observe_signature(
                self._signature_at(reference, 0.01 * step)
            ):
                fired = True
                break
        assert fired


class TestRateDetectorReplays:
    """Seeded end-to-end pins: gradual ramps the level trigger would
    sleep through must rate-fire within a budgeted number of batches;
    clean streams must never false-trigger."""

    @pytest.mark.parametrize("span", [64, 72, 80])
    @pytest.mark.parametrize("seed", range(5))
    def test_gradual_ramp_fires_rate_first(
        self, regime_setup, span, seed
    ):
        cdln, base, _ = regime_setup
        result = budgeted_drift_replay(
            cdln,
            base,
            NOISE,
            DriftSchedule.gradual(4, span),
            rng=seed,
            batch_size=32,
            num_batches=40,
            delta=DELTA,
            adaptive=True,
            detector_kwargs=RATE_KWARGS,
        )
        assert result.retargets >= 1
        assert result.retarget_triggers[0] == "rate"
        # retarget_observations resets on rebase: the first entry is the
        # whole batch budget the detection consumed.
        assert result.retarget_observations[0] <= DETECTION_BUDGET
        assert result.hard_cap_held

    @pytest.mark.parametrize("seed", range(5))
    def test_clean_stream_never_false_triggers(self, regime_setup, seed):
        cdln, base, _ = regime_setup
        result = budgeted_drift_replay(
            cdln,
            base,
            NOISE,
            DriftSchedule.sudden(41),  # shift beyond the horizon: all clean
            rng=100 + seed,
            batch_size=32,
            num_batches=40,
            delta=DELTA,
            adaptive=True,
            detector_kwargs=RATE_KWARGS,
        )
        assert result.retargets == 0
        assert result.retarget_triggers == ()


class TestOverheadAccounting:
    """Regression: mini-calibration passes are charged to ``overhead_ops``
    explicitly -- never folded into served ``mean_ops`` -- so the
    learning-vs-frozen head-to-head stays fair."""

    def test_replay_charges_learning_to_overhead(
        self, regime_setup
    ):
        cdln, base, _ = regime_setup
        full_pass = float(cdln.path_cost_table().exit_totals()[-1])
        result = budgeted_drift_replay(
            cdln,
            base,
            NOISE,
            DriftSchedule.sudden(3),
            rng=0,
            batch_size=32,
            num_batches=12,
            delta=DELTA,
            learning=True,
            table_scenarios=[Scenario(name="clean")],
            unknown_distance=0.5,
            learn_samples=32,
        )
        assert result.learned_regimes == 1
        # Exactly one bounded scoring pass: learn_samples images at the
        # full-depth price, charged to the phase that learned.
        assert result.total_overhead_ops == pytest.approx(32 * full_pass)
        charged = [p for p in result.phases if p.overhead_ops > 0]
        assert len(charged) == 1
        # Served cost excludes it: every phase's mean is bounded by the
        # deepest exit, which a folded-in pass would break.
        for phase in result.phases:
            assert phase.mean_ops <= full_pass
        assert result.budget_error() > result.budget_error(
            include_overhead=False
        )

    def test_frozen_table_pays_zero_overhead(self, regime_setup):
        cdln, base, _ = regime_setup
        result = budgeted_drift_replay(
            cdln,
            base,
            NOISE,
            DriftSchedule.sudden(3),
            rng=0,
            batch_size=32,
            num_batches=8,
            delta=DELTA,
            adaptive=True,
            table_scenarios=[Scenario(name="clean")],
        )
        assert result.learned_regimes == 0
        assert result.total_overhead_ops == 0.0

    def test_pop_overhead_ops_drains(self, regime_setup):
        cdln, base, table = regime_setup
        table = fresh_copy(table)
        engine = learning_engine(
            cdln,
            table,
            unknown_distance=0.05,
            calibrator=MiniCalibrator(max_samples=16),
        )
        drive_until_event(engine, NOISE.realize(base).images)
        adaptive = engine.adaptive
        assert adaptive.learned == ["learned_0"]
        full_pass = float(cdln.path_cost_table().exit_totals()[-1])
        assert adaptive.overhead_ops_total == pytest.approx(16 * full_pass)
        # The pending bucket hands the pass's cost to whoever accounts
        # for it (the replay loop) exactly once...
        assert adaptive.pop_overhead_ops() == pytest.approx(16 * full_pass)
        assert adaptive.pop_overhead_ops() == 0.0
        # ...while the lifetime total stays monotone.
        assert adaptive.overhead_ops_total == pytest.approx(16 * full_pass)


class TestFleetLearning:
    """The fabric path: one replica mini-calibrates for the whole fleet,
    the parent grows + persists the table, retargets every replica, and
    charges the pass to the fleet's overhead ledger."""

    def test_fleet_learns_unknown_regime(
        self, trained_3c_all_taps, tiny_test_set, tmp_path
    ):
        cdln = trained_3c_all_taps.cdln
        table = OperatingTable.build(
            cdln, tiny_test_set, [Scenario(name="clean")],
            reference_delta=DELTA,
        )
        table_path = tmp_path / "table.json"
        table.save(table_path)
        adaptive = LearningDeltaPolicy(
            table,
            unknown_distance=0.05,
            calibrator=MiniCalibrator(max_samples=32),
            table_path=table_path,
        )
        target = table.entry("clean").point_for_delta(DELTA).mean_ops
        config = FabricConfig(
            config=ServingConfig(
                model=cdln,
                policy=MicroBatchPolicy(max_batch_size=4, max_wait_s=0.005),
                controller=DeltaController(
                    target_mean_ops=target, delta=DELTA
                ),
                adaptive=adaptive,
                resilience=ResiliencePolicy(max_retries=1),
            ),
            replicas=2,
        )
        images = tiny_test_set.images[:64]
        with ServingFabric(config) as fabric:
            tickets = [fabric.submit(images[i % 64]) for i in range(32)]
            assert all(
                not t.result(timeout=30.0).failed for t in tickets
            )
            submitted = fabric.fleet_snapshot().requests
            # Inject a fleet-wide unknown-regime window and pump the
            # merged-drift path until the learning request goes out.
            far = far_signature(table.entry("clean").signature_at(DELTA))
            detector = fabric._detector
            requested = False
            for _ in range(
                detector.min_observations + detector.patience + 4
            ):
                with fabric._cond:
                    for rep in fabric._replicas:
                        if rep.state == "live":
                            rep.last_signature = far
                    fabric._feed_drift_locked()
                    requested = requested or fabric._learning is not None
                if requested:
                    break
            assert requested, "unknown regime never requested learning"
            deadline = time.monotonic() + 30.0
            snapshot = fabric.fleet_snapshot()
            while time.monotonic() < deadline and not snapshot.learned_regimes:
                time.sleep(0.05)
                snapshot = fabric.fleet_snapshot()
            assert snapshot.learned_regimes == 1
            # Overhead lands in the fleet ledger -- bounded by the window
            # the replica scored -- and never in the request count.
            full_pass = float(cdln.path_cost_table().exit_totals()[-1])
            assert 0 < snapshot.overhead_ops <= 64 * full_pass
            assert snapshot.overhead_ops == pytest.approx(
                adaptive.overhead_ops_total
            )
            assert snapshot.requests == submitted
            event = fabric.adaptive.events[-1]
            assert event.learned
            assert event.regime.startswith(LEARNED_PREFIX)
            assert fabric.adaptive.current_regime == event.regime
            # Every replica acks the broadcast table (the barrier).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and fabric._regime_acks < 2:
                time.sleep(0.05)
            assert fabric._regime_acks >= 2
        # The grown artifact was re-persisted atomically and reloads.
        reloaded = OperatingTable.load(table_path)
        assert event.regime in reloaded.regime_names
        assert reloaded.entry(event.regime).learned
