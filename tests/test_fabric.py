"""Multi-replica serving fabric: shared parameters, fleet control, chaos.

The process-spawning tests keep fleets tiny (1-2 replicas, a few dozen
requests) -- a replica boots in a couple of seconds and the point is the
cross-process *contracts* (exact ledgers, no stranded tickets, span
coverage), not throughput.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.scenarios import Scenario
from repro.serving import (
    AdaptiveDeltaPolicy,
    ArrivalSchedule,
    DeltaController,
    FaultPlan,
    FaultSpec,
    LoadRunner,
    MicroBatchPolicy,
    ModelRegistry,
    OperatingTable,
    RegimeSignature,
    ResiliencePolicy,
    ServingConfig,
    InferenceEngine,
)
from repro.serving.fabric import (
    FabricConfig,
    ServingFabric,
    SharedParams,
    _SignatureTap,
)

DELTA = 0.6
FAST = MicroBatchPolicy(max_batch_size=4, max_wait_s=0.005)


def _fabric_config(trained, *, replicas=2, resilience=..., **kw) -> FabricConfig:
    if resilience is ...:
        resilience = ResiliencePolicy(max_retries=1)
    fabric_kw = {
        k: kw.pop(k)
        for k in ("capacity_ops_per_s", "obs_dir", "report_every", "start_method")
        if k in kw
    }
    kw.setdefault("policy", FAST)
    kw.setdefault("delta", DELTA)
    return FabricConfig(
        config=ServingConfig(model=trained.cdln, resilience=resilience, **kw),
        replicas=replicas,
        **fabric_kw,
    )


@pytest.fixture(scope="module")
def fleet(trained_3c):
    """One 2-replica fleet shared by the happy-path tests."""
    fabric = ServingFabric(_fabric_config(trained_3c)).start()
    yield fabric
    fabric.stop()


@pytest.fixture()
def images(trained_3c):
    shape = trained_3c.cdln.baseline.input_shape
    return np.random.default_rng(0).standard_normal((16, *shape))


class TestSharedParams:
    def test_rehydrated_model_serves_identically(self, trained_3c, images):
        params = SharedParams(trained_3c.cdln)
        try:
            clone = SharedParams.rehydrate(params.name)

            def serve(model):
                engine = InferenceEngine.from_config(
                    ServingConfig(model=model, policy=FAST, delta=DELTA)
                )
                tickets = [engine.submit(img) for img in images[:8]]
                engine.flush()
                return [t.result(timeout=1.0) for t in tickets]

            for a, b in zip(serve(trained_3c.cdln), serve(clone)):
                assert a.exit_stage == b.exit_stage
                assert a.confidence == pytest.approx(b.confidence)
                assert a.ops == pytest.approx(b.ops)
        finally:
            params.dispose()

    def test_views_are_readonly_and_exact(self):
        payload = {
            "w": np.arange(12, dtype=np.float64).reshape(3, 4),
            "nested": [np.ones(5, dtype=np.float32), "tag"],
            "n": 7,
        }
        params = SharedParams(payload)
        try:
            assert params.num_arrays == 2
            clone = SharedParams.rehydrate(params.name)
            np.testing.assert_array_equal(clone["w"], payload["w"])
            np.testing.assert_array_equal(clone["nested"][0], payload["nested"][0])
            assert clone["nested"][1] == "tag" and clone["n"] == 7
            assert not clone["w"].flags.writeable
            with pytest.raises(ValueError):
                clone["w"][0, 0] = 99.0
        finally:
            params.dispose()

    def test_object_dtype_arrays_stay_inline(self):
        payload = {"objs": np.array([{"a": 1}, None], dtype=object)}
        params = SharedParams(payload)
        try:
            assert params.num_arrays == 0
            clone = SharedParams.rehydrate(params.name)
            assert clone["objs"][0] == {"a": 1}
        finally:
            params.dispose()

    def test_dispose_is_idempotent(self):
        params = SharedParams({"w": np.zeros(4)})
        params.dispose()
        params.dispose()


class TestSignatureTap:
    def test_window_trims_and_counts(self):
        tap = _SignatureTap(num_stages=3, window=2)
        assert tap.window_signature() is None
        tap.after_batch(None, np.array([0, 0, 1]), np.array([0.9, 0.8, 0.4]))
        tap.after_batch(None, np.array([2, 2]), np.array([0.1, 0.2]))
        tap.after_batch(None, np.array([1]), np.array([0.5]))
        sig = tap.window_signature()
        # Window of 2: only the last two batches (3 observations) remain.
        assert sig.count == 3
        np.testing.assert_allclose(sig.exit_fractions, [0.0, 1 / 3, 2 / 3])
        expected = np.quantile(
            [0.1, 0.2, 0.5], [0.1, 0.25, 0.5, 0.75, 0.9]
        )
        np.testing.assert_allclose(sig.stage0_quantiles, expected)


class TestFabricConfigValidation:
    def test_knob_bounds(self, trained_3c):
        cfg = ServingConfig(model=trained_3c.cdln, delta=DELTA)
        with pytest.raises(ConfigurationError, match="replicas"):
            FabricConfig(config=cfg, replicas=0).validate()
        with pytest.raises(ConfigurationError, match="start_method"):
            FabricConfig(config=cfg, start_method="thread").validate()
        with pytest.raises(ConfigurationError, match="capacity_ops_per_s"):
            FabricConfig(config=cfg, capacity_ops_per_s=0.0).validate()
        with pytest.raises(ConfigurationError, match="report_every"):
            FabricConfig(config=cfg, report_every=0).validate()

    def test_registry_configs_rejected(self, trained_3c):
        registry = ModelRegistry()
        registry.register("m", trained_3c.cdln)
        cfg = ServingConfig(registry=registry, model_spec="m", delta=DELTA)
        with pytest.raises(ConfigurationError, match="shared memory"):
            FabricConfig(config=cfg).validate()

    def test_uncalibrated_soft_controller_rejected(self, trained_3c):
        cfg = ServingConfig(
            model=trained_3c.cdln,
            controller=DeltaController(target_mean_ops=1e5),
        )
        with pytest.raises(ConfigurationError, match="calibrate"):
            ServingFabric(FabricConfig(config=cfg))


class TestFleetServing:
    def test_serves_with_exact_ledger(self, fleet, images):
        before = fleet.fleet_snapshot()
        tickets = [
            fleet.submit(images[i % len(images)], priority=i % 3)
            for i in range(24)
        ]
        results = [t.result(timeout=30.0) for t in tickets]
        assert all(not r.failed for r in results)
        assert {r.request_id for r in results} == {
            t.request_id for t in tickets
        }
        snap = fleet.fleet_snapshot()
        assert snap.requests - before.requests == 24
        assert snap.failed_requests == before.failed_requests
        assert sum(n for _, n in snap.requests_by_replica) == snap.requests
        assert fleet.queue_depth() == 0

    def test_latency_covers_fleet_queue_wait(self, fleet, images):
        ticket = fleet.submit(images[0])
        result = ticket.result(timeout=30.0)
        assert result.latency_s > 0
        assert result.queue_wait_s >= 0
        assert result.latency_s >= result.queue_wait_s

    def test_health_surface(self, fleet):
        health = fleet.health()
        assert health.live and health.ready and not health.degraded
        assert health.worker_restarts == 0
        assert health.restart_budget_remaining == 2 * 5
        assert fleet.live_replicas == 2
        assert fleet.running

    def test_nan_image_fails_ticket_at_intake(self, fleet, images):
        bad = images[0].copy()
        bad.flat[0] = np.nan
        ticket = fleet.submit(bad)
        result = ticket.result(timeout=1.0)
        assert result.failed and result.error == "invalid_input"
        snap = fleet.fleet_snapshot()
        assert ("invalid_input", 1) in snap.failed_by_cause

    def test_wrong_shape_always_raises(self, fleet):
        with pytest.raises(ShapeError):
            fleet.submit(np.zeros((3, 3)))

    def test_bad_deadline_rejected(self, fleet, images):
        with pytest.raises(ConfigurationError, match="deadline_s"):
            fleet.submit(images[0], deadline_s=0.0)

    def test_double_start_rejected(self, fleet):
        with pytest.raises(ConfigurationError, match="already started"):
            fleet.start()

    def test_priority_boards_ahead_of_backlog(self, trained_3c, images):
        # One throttled replica => strictly serialized batches: the bulk
        # backlog queues up, then the late high-priority request must
        # board the next dispatched batch ahead of the remaining bulk.
        config = _fabric_config(
            trained_3c, replicas=1, capacity_ops_per_s=2e7
        )
        with ServingFabric(config) as fabric:
            bulk = [fabric.submit(images[i % 16]) for i in range(12)]
            while fabric.queue_depth() < 6:  # backlog exists
                time.sleep(0.001)
            urgent = fabric.submit(images[0], priority=10)
            done_at = {}
            for name, ticket in [("urgent", urgent)] + [
                (i, t) for i, t in enumerate(bulk)
            ]:
                ticket.result(timeout=60.0)
                done_at[name] = time.perf_counter()
            assert done_at["urgent"] < done_at[len(bulk) - 1]

    def test_queue_depth_counts_waiting_and_inflight(
        self, trained_3c, images
    ):
        config = _fabric_config(
            trained_3c, replicas=1, capacity_ops_per_s=2e7
        )
        with ServingFabric(config) as fabric:
            tickets = [fabric.submit(images[i % 16]) for i in range(10)]
            deep = max(
                fabric.queue_depth() for _ in range(200) if not time.sleep(0.002)
            )
            assert deep > 0
            for ticket in tickets:
                ticket.result(timeout=60.0)
            assert fabric.queue_depth() == 0

    def test_submit_after_stop_raises(self, trained_3c, images):
        fabric = ServingFabric(_fabric_config(trained_3c, replicas=1)).start()
        fabric.stop()
        with pytest.raises(ConfigurationError, match="not running"):
            fabric.submit(images[0])
        fabric.stop()  # idempotent


class TestReplicaCrash:
    def test_kill_fails_inflight_restarts_and_reconciles(
        self, trained_3c, images, tmp_path
    ):
        config = _fabric_config(
            trained_3c,
            replicas=2,
            obs_dir=tmp_path,
            resilience=ResiliencePolicy(max_retries=1, max_restarts=5),
        )
        with ServingFabric(config) as fabric:
            tickets = []
            for i in range(80):
                tickets.append(fabric.submit(images[i % 16]))
                if i == 30:
                    assert fabric.kill_replica(0)
                time.sleep(0.002)
            results = [t.result(timeout=60.0) for t in tickets]
            ok = [r for r in results if not r.failed]
            failed = [r for r in results if r.failed]
            # The kill loses at most the one in-flight batch; everything
            # else reroutes to the survivor or the restarted replica.
            assert {r.error for r in failed} <= {"worker_crash"}
            assert len(failed) <= FAST.max_batch_size
            snap = fabric.fleet_snapshot()
            assert snap.requests == len(ok)
            assert snap.failed_requests == len(failed)
            assert snap.restarts == 1
            assert fabric.health().worker_restarts == 1
            deadline = time.time() + 15.0
            while fabric.live_replicas < 2 and time.time() < deadline:
                time.sleep(0.02)
            assert fabric.live_replicas == 2
            after = [fabric.submit(images[i % 16]) for i in range(8)]
            assert all(
                not t.result(timeout=30.0).failed for t in after
            )
        # Span coverage: every request carries at least one span -- acked
        # batches flushed worker-side, crash casualties got parent spans.
        spans = []
        for path in tmp_path.rglob("trace.jsonl"):
            spans += [
                json.loads(line)
                for line in path.read_text().splitlines()
                if line.strip()
            ]
        spans = [s for s in spans if s.get("kind") == "span"]
        seen = {s["request_id"] for s in spans}
        assert seen == {t.request_id for t in tickets + after}
        crash_spans = [s for s in spans if s.get("error") == "worker_crash"]
        assert len(crash_spans) == len(failed)
        # Replica/session batch-id namespacing keeps ids collision-free.
        assert len({(s["batch_id"], s["request_id"]) for s in spans}) == len(
            spans
        )

    def test_restart_budget_exhaustion_fails_backlog_and_fast(
        self, trained_3c, images
    ):
        config = _fabric_config(
            trained_3c,
            replicas=1,
            capacity_ops_per_s=2e7,
            resilience=ResiliencePolicy(max_retries=1, max_restarts=0),
        )
        with ServingFabric(config) as fabric:
            tickets = [fabric.submit(images[i % 16]) for i in range(12)]
            fabric.kill_replica(0)
            results = [t.result(timeout=30.0) for t in tickets]
            failed = [r for r in results if r.failed]
            assert failed, "the kill must fail at least the in-flight batch"
            assert {r.error for r in failed} <= {
                "worker_crash", "restart_budget",
            }
            deadline = time.time() + 10.0
            while fabric.live_replicas and time.time() < deadline:
                time.sleep(0.02)
            health = fabric.health()
            assert not health.live and health.degraded
            assert health.restart_budget_remaining == 0
            late = fabric.submit(images[0])
            late_result = late.result(timeout=1.0)
            assert late_result.failed
            assert late_result.error == "restart_budget"
            snap = fabric.fleet_snapshot()
            assert snap.requests + snap.failed_requests == 13

    def test_unsupervised_fleet_raises_on_submit_when_dead(
        self, trained_3c, images
    ):
        config = _fabric_config(trained_3c, replicas=1, resilience=None)
        with ServingFabric(config) as fabric:
            first = fabric.submit(images[0])
            assert not first.result(timeout=30.0).failed
            fabric.kill_replica(0)
            deadline = time.time() + 10.0
            while fabric.live_replicas and time.time() < deadline:
                time.sleep(0.02)
            with pytest.raises(RuntimeError, match="dead"):
                fabric.submit(images[0])


class TestFleetControl:
    @pytest.fixture(scope="class")
    def table(self, trained_3c_all_taps, tiny_test_set):
        scenarios = [
            Scenario(name="clean"),
            Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),)),
        ]
        return OperatingTable.build(
            trained_3c_all_taps.cdln,
            tiny_test_set,
            scenarios,
            reference_delta=DELTA,
        )

    def _controlled_fabric(self, trained, table, **kw) -> ServingFabric:
        entry = table.entry(table.reference_regime)
        target = entry.point_for_delta(DELTA).mean_ops
        return ServingFabric(
            FabricConfig(
                config=ServingConfig(
                    model=trained.cdln,
                    policy=FAST,
                    controller=DeltaController(
                        target_mean_ops=target, delta=DELTA
                    ),
                    adaptive=AdaptiveDeltaPolicy(table),
                    resilience=ResiliencePolicy(max_retries=1),
                ),
                **kw,
            )
        )

    def test_prime_calibrates_fleet_controller(
        self, trained_3c_all_taps, table
    ):
        fabric = self._controlled_fabric(trained_3c_all_taps, table)
        assert not fabric.controller.needs_calibration
        assert fabric.delta == pytest.approx(fabric.controller.delta)
        assert fabric._detector is not None

    def test_merged_drift_retargets_fleet(self, trained_3c_all_taps, table):
        fabric = self._controlled_fabric(trained_3c_all_taps, table)
        detector = fabric._detector
        shifted = table.entry("noise").signature_at(
            fabric.controller.delta, max_stage=None
        )
        if shifted.count <= 0:
            shifted = RegimeSignature(
                shifted.exit_fractions, shifted.stage0_quantiles, count=256
            )
        # Split the shifted fleet view unevenly across the two replicas;
        # the count-weighted merge must reconstruct it exactly.
        parts = [
            RegimeSignature(
                shifted.exit_fractions, shifted.stage0_quantiles, count=300
            ),
            RegimeSignature(
                shifted.exit_fractions, shifted.stage0_quantiles, count=20
            ),
        ]
        merged = RegimeSignature.merge(parts)
        np.testing.assert_allclose(
            merged.exit_fractions, shifted.exit_fractions
        )
        for rep, part in zip(fabric._replicas, parts):
            rep.state = "live"
            rep.last_signature = part
        fired = False
        for _ in range(detector.min_observations + detector.patience + 2):
            with fabric._cond:
                fabric._feed_drift_locked()
            if fabric.adaptive.events:
                fired = True
                break
        assert fired, "merged shifted signatures must trigger a retarget"
        assert fabric.adaptive.current_regime == "noise"
        event = fabric.adaptive.events[-1]
        assert event.regime == "noise"
        assert fabric.delta == pytest.approx(fabric.controller.delta)

    def test_fleet_delta_control_end_to_end(
        self, trained_3c_all_taps, table, images
    ):
        shape = trained_3c_all_taps.cdln.baseline.input_shape
        pool = np.random.default_rng(3).standard_normal((16, *shape))
        fabric = self._controlled_fabric(
            trained_3c_all_taps, table, replicas=2
        )
        with fabric:
            tickets = [fabric.submit(pool[i % 16]) for i in range(24)]
            results = [t.result(timeout=30.0) for t in tickets]
            assert all(not r.failed for r in results)
            # The fleet controller folded every acked batch's measured
            # cost into its feedback EWMA (1.0 is the untouched prior --
            # real traffic essentially never lands on it exactly).
            assert 0.0 <= fabric.delta <= 1.0
            assert fabric.controller._cost_ratio != 1.0


class TestReplicaIndependence:
    """Per-replica seed derivation: N independent streams, reproducibly."""

    def test_fault_plan_streams_are_disjoint_and_stable(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="request_error", rate=0.5),), seed=7
        )
        seeds = {plan.for_replica(i).seed for i in range(8)}
        assert len(seeds) == 8 and plan.seed not in seeds
        assert plan.for_replica(3) == plan.for_replica(3)
        with pytest.raises(ConfigurationError):
            plan.for_replica(-1)

    def test_arrival_schedules_decorrelate(self):
        schedule = ArrivalSchedule.poisson(
            rate_rps=200.0, duration_s=0.5, seed=11
        )
        a = [x.t for x in schedule.for_replica(0).materialize()]
        b = [x.t for x in schedule.for_replica(1).materialize()]
        assert a != b
        again = [x.t for x in schedule.for_replica(0).materialize()]
        assert a == again
        with pytest.raises(ConfigurationError, match="replay"):
            ArrivalSchedule.replay(
                arrivals=schedule.materialize()
            ).for_replica(0)


class TestLoadRunnerIntegration:
    def test_open_loop_report_reconciles_with_fleet(
        self, trained_3c, images
    ):
        fabric = ServingFabric(
            _fabric_config(trained_3c, replicas=2)
        ).start()
        try:
            schedule = ArrivalSchedule.poisson(
                rate_rps=150.0, duration_s=0.6, seed=5, deadline_s=1.0
            )
            runner = LoadRunner(fabric, schedule, images)
            report = runner.run(slo_p99_s=1.0, server=fabric)
            assert report.dropped == 0
            snap = fabric.fleet_snapshot()
            assert report.answered == snap.requests
            assert report.failed_count == snap.failed_requests
            assert report.requests == snap.requests + snap.failed_requests
        finally:
            fabric.stop()
