"""Tests for repro.scenarios: specs, suites, drift streams, evaluation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.dataset import DigitDataset
from repro.errors import ConfigurationError
from repro.scenarios import (
    DriftSchedule,
    DriftStream,
    Scenario,
    ScenarioSuite,
    default_suite,
    evaluate_scenario,
    evaluate_suite,
    expected_calibration_error,
    replay_drift,
)
from repro.scenarios.cli import main as cli_main


def make_dataset(n=60, seed=0, num_classes=10) -> DigitDataset:
    rng = np.random.default_rng(seed)
    return DigitDataset(
        images=rng.random((n, 1, 12, 12)),
        labels=rng.integers(0, num_classes, size=n),
        name="toy",
    )


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="unknown corruption"):
            Scenario(name="bad", corruptions=(("fog", 0.5),))
        with pytest.raises(ConfigurationError, match="severity"):
            Scenario(name="bad", corruptions=(("blur", 2.0),))
        with pytest.raises(ConfigurationError, match="class_mix"):
            Scenario(name="bad", class_mix=(0.0,) * 10)
        with pytest.raises(ConfigurationError, match="sample_limit"):
            Scenario(name="bad", sample_limit=0)
        with pytest.raises(ConfigurationError, match="name"):
            Scenario(name="")

    def test_severity_and_primary_corruption(self):
        clean = Scenario(name="clean")
        assert clean.is_clean and clean.severity == 0.0
        assert clean.primary_corruption == "clean"
        mixed = Scenario(
            name="mix", corruptions=(("blur", 0.3), ("gaussian_noise", 0.8))
        )
        assert mixed.severity == 0.8
        assert mixed.primary_corruption == "blur"

    def test_realize_is_deterministic(self):
        base = make_dataset()
        scenario = Scenario(name="noisy", corruptions=(("gaussian_noise", 0.5),))
        a = scenario.realize(base)
        b = scenario.realize(base)
        np.testing.assert_array_equal(a.images, b.images)
        assert a.name == "toy:noisy"

    def test_realize_clean_copies(self):
        base = make_dataset()
        realized = Scenario(name="clean").realize(base)
        np.testing.assert_array_equal(realized.images, base.images)
        realized.images[0] = 0.0
        assert base.images[0].any()  # base untouched

    def test_sample_limit(self):
        base = make_dataset(n=50)
        realized = Scenario(name="cap", sample_limit=20).realize(base)
        assert len(realized) == 20
        # A limit above the base size degrades to the base size.
        assert len(Scenario(name="big", sample_limit=500).realize(base)) == 50

    def test_class_mix_biases_composition(self):
        base = make_dataset(n=400, seed=1)
        mix = tuple(10.0 if digit == 3 else 0.1 for digit in range(10))
        realized = Scenario(name="skew", class_mix=mix, seed=2).realize(base)
        counts = realized.class_counts()
        assert counts[3] > 0.5 * len(realized)
        assert len(realized) == len(base)

    def test_class_mix_must_match_classes(self):
        base = make_dataset()
        with pytest.raises(ConfigurationError, match="class_mix"):
            Scenario(name="skew", class_mix=(1.0, 2.0)).realize(base)

    def test_empty_base_rejected(self):
        empty = make_dataset().subset(np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError, match="empty"):
            Scenario(name="clean").realize(empty)


class TestScenarioSuite:
    def test_add_get_iter(self):
        suite = ScenarioSuite("s")
        scenario = suite.add(Scenario(name="a"))
        assert suite.get("a") is scenario
        assert "a" in suite and len(suite) == 1
        assert [s.name for s in suite] == ["a"]
        assert suite.select(["a"]) == [scenario]

    def test_duplicate_and_unknown(self):
        suite = ScenarioSuite()
        suite.add(Scenario(name="a"))
        with pytest.raises(ConfigurationError, match="already"):
            suite.add(Scenario(name="a"))
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            suite.get("b")

    def test_default_suite_contents(self):
        suite = default_suite(severities=(0.5, 1.0))
        names = suite.names()
        assert "clean" in names
        assert "gaussian_noise@0.5" in names and "blur@1" in names
        assert "class_skew" in names and "composite_blur_noise" in names
        restricted = default_suite(
            corruptions=("blur",),
            severities=(0.5,),
            include_class_skew=False,
            include_composite=False,
        )
        assert restricted.names() == ("clean", "blur@0.5")


class TestDriftSchedule:
    def test_sudden(self):
        schedule = DriftSchedule.sudden(3)
        assert [schedule.mix_fraction(t) for t in range(5)] == [0, 0, 0, 1.0, 1.0]

    def test_gradual(self):
        schedule = DriftSchedule.gradual(2, 6)
        fractions = [schedule.mix_fraction(t) for t in range(8)]
        assert fractions[:3] == [0.0, 0.0, 0.0]
        assert fractions[6:] == [1.0, 1.0]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_recurring(self):
        schedule = DriftSchedule.recurring(4, duty=0.5)
        fractions = [schedule.mix_fraction(t) for t in range(8)]
        assert fractions == [0.0, 0.0, 1.0, 1.0] * 2

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            DriftSchedule(kind="chaotic")
        with pytest.raises(ConfigurationError, match="end > start"):
            DriftSchedule.gradual(5, 5)
        with pytest.raises(ConfigurationError, match="period"):
            DriftSchedule.recurring(0)
        with pytest.raises(ConfigurationError, match="batch index"):
            DriftSchedule.sudden(0).mix_fraction(-1)


class TestDriftStream:
    def test_batches_match_schedule(self):
        base = make_dataset(n=80)
        scenario = Scenario(name="noisy", corruptions=(("gaussian_noise", 1.0),))
        stream = DriftStream.from_scenario(
            base, scenario, DriftSchedule.sudden(2), batch_size=10, num_batches=5,
            rng=0,
        )
        batches = list(stream)
        assert len(batches) == 5 == len(stream)
        for t, batch in enumerate(batches):
            assert batch.index == t
            assert batch.images.shape == (10, 1, 12, 12)
            assert batch.labels.shape == (10,)
            assert batch.shifted_mask.sum() == round(batch.mix_fraction * 10)
        assert batches[0].mix_fraction == 0.0
        assert batches[4].mix_fraction == 1.0

    def test_deterministic(self):
        base = make_dataset(n=40)
        scenario = Scenario(name="noisy", corruptions=(("impulse_noise", 0.8),))

        def collect():
            stream = DriftStream.from_scenario(
                base, scenario, DriftSchedule.gradual(1, 4), batch_size=8,
                num_batches=6, rng=3,
            )
            return np.concatenate([b.images for b in stream])

        np.testing.assert_array_equal(collect(), collect())

    def test_reiterating_same_stream_is_exact(self):
        """Inspect-then-serve: a second pass over one stream object must see
        the very same batches (per-batch child generators, not one cursor)."""
        base = make_dataset(n=40)
        scenario = Scenario(name="noisy", corruptions=(("gaussian_noise", 0.9),))
        stream = DriftStream.from_scenario(
            base, scenario, DriftSchedule.sudden(2), batch_size=8, num_batches=4,
            rng=5,
        )
        first = [(b.images.copy(), b.labels.copy()) for b in stream]
        second = [(b.images, b.labels) for b in stream]
        for (ia, la), (ib, lb) in zip(first, second):
            np.testing.assert_array_equal(ia, ib)
            np.testing.assert_array_equal(la, lb)

    def test_validation(self):
        base = make_dataset(n=10)
        empty = base.subset(np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError, match="non-empty"):
            DriftStream(base, empty, DriftSchedule.sudden(1))
        small = DigitDataset(
            images=np.zeros((4, 1, 8, 8)), labels=np.zeros(4, dtype=np.int64)
        )
        with pytest.raises(ConfigurationError, match="image shapes"):
            DriftStream(base, small, DriftSchedule.sudden(1))


class TestExpectedCalibrationError:
    def test_perfectly_calibrated_bins(self):
        # Two bins whose mean confidence equals their empirical accuracy.
        conf = np.array([0.8, 0.8, 0.8, 0.8, 0.8])
        correct = np.array([True, True, True, True, False])
        ece = expected_calibration_error(conf, correct, num_bins=10)
        assert ece == pytest.approx(0.0)

    def test_overconfident_wrong(self):
        conf = np.full(10, 0.95)
        correct = np.zeros(10, dtype=bool)
        assert expected_calibration_error(conf, correct) == pytest.approx(0.95)

    def test_empty_is_zero(self):
        assert expected_calibration_error(np.array([]), np.array([], dtype=bool)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="disagree"):
            expected_calibration_error(np.ones(3), np.ones(2, dtype=bool))


class TestEvaluation:
    def test_evaluate_scenario_fields(self, trained_3c, tiny_test_set):
        base = tiny_test_set.subset(np.arange(80))
        scenario = Scenario(name="noisy", corruptions=(("gaussian_noise", 0.8),))
        results = evaluate_scenario(
            trained_3c.cdln, base, scenario, deltas=[0.4, 0.6]
        )
        assert [r.delta for r in results] == [0.4, 0.6]
        for r in results:
            assert r.num_samples == 80
            assert 0.0 <= r.accuracy <= 1.0
            assert r.mean_ops > 0 and r.mean_energy_pj > 0
            assert r.exit_fractions.sum() == pytest.approx(1.0)
            assert 0.0 <= r.calibration_error <= 1.0
            assert len(r.stage_names) == len(r.exit_fractions)

    def test_suite_report_aggregates(self, trained_3c, tiny_test_set):
        base = tiny_test_set.subset(np.arange(100))
        suite = default_suite(
            corruptions=("gaussian_noise",),
            severities=(0.5, 1.0),
            include_class_skew=False,
            include_composite=False,
        )
        report = evaluate_suite(trained_3c.cdln, base, suite, delta=0.6)
        assert len(report.results) == 3
        assert report.clean is not None and report.clean.scenario.is_clean
        profile = report.severity_profile()
        assert [s for s, *_ in profile] == [0.0, 0.5, 1.0]
        groups = report.by_corruption()
        assert set(groups) == {"gaussian_noise"}
        rendered = report.render()
        assert "Robustness report" in rendered
        assert "severity profile" in rendered.lower()
        payload = json.dumps(report.to_dict())
        assert "gaussian_noise@1" in payload
        assert report.for_scenario("clean") is report.clean
        with pytest.raises(ConfigurationError, match="no result"):
            report.for_scenario("nope")

    def test_corruption_shifts_exits_deeper(self, trained_3c, tiny_test_set):
        """The tentpole's qualitative claim at test scale: corrupted inputs
        are less confident, so they travel deeper and cost more."""
        base = tiny_test_set
        suite = default_suite(
            corruptions=("occlusion",),
            severities=(1.0,),
            include_class_skew=False,
            include_composite=False,
        )
        report = evaluate_suite(trained_3c.cdln, base, suite, delta=0.6)
        clean = report.clean
        severe = report.for_scenario("occlusion@1")
        assert severe.accuracy < clean.accuracy
        assert severe.mean_exit_stage > clean.mean_exit_stage
        assert severe.mean_ops > clean.mean_ops
        assert report.exit_depth_shift() > 0


class TestDriftReplay:
    @pytest.fixture()
    def drift_setup(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln
        base = tiny_test_set
        scenario = Scenario(name="shift", corruptions=(("gaussian_noise", 1.0),))
        stream = DriftStream.from_scenario(
            base, scenario, DriftSchedule.sudden(2), batch_size=24, num_batches=6,
            rng=0,
        )
        return cdln, stream

    def test_hard_cap_never_violated(self, drift_setup):
        cdln, stream = drift_setup
        totals = cdln.path_cost_table().exit_totals()
        hard = float((totals[-2] + totals[-1]) / 2)
        result = replay_drift(cdln, stream, hard_ops_budget=hard, delta=0.6)
        assert result.hard_cap_held
        assert result.budget_violations == 0
        assert result.max_ops_overall <= hard
        assert len(result.phases) == 6
        assert "held for every request" in result.render()

    def test_soft_target_with_recalibration(self, drift_setup):
        cdln, stream = drift_setup
        baseline_ops = float(cdln.path_cost_table().baseline_cost.total)
        result = replay_drift(
            cdln,
            stream,
            target_mean_ops=0.75 * baseline_ops,
            delta=0.6,
            recalibrate_every=2,
        )
        assert result.recalibrations >= 1
        assert result.phases[0].delta > 0
        clean_ops, shifted_ops = result.mean_ops_by_regime()
        assert np.isfinite(clean_ops) and np.isfinite(shifted_ops)
        payload = result.to_dict()
        assert len(payload["phases"]) == 6

    def test_fixed_delta_replay(self, drift_setup):
        cdln, stream = drift_setup
        result = replay_drift(cdln, stream, delta=0.6)
        assert result.final_delta == 0.6
        assert all(p.delta == 0.6 for p in result.phases)


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian_noise@1" in out
        assert "class_skew" in out

    def test_unknown_corruption_is_config_error(self, capsys):
        code = cli_main(["list", "--corruptions", "fog"])
        assert code == 2
        assert "unknown corruption" in capsys.readouterr().err

    def test_duplicate_severities_deduplicated(self, capsys):
        assert cli_main(["list", "--severities", "0.5", ".5", "0.5"]) == 0
        out = capsys.readouterr().out
        rows = [ln for ln in out.splitlines() if ln.startswith("| blur@0.5 ")]
        assert len(rows) == 1

    def test_label_only_suite_skips_drift_and_writes_report(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "report.json"
        code = cli_main(
            [
                "run",
                "--tier", "tiny",
                "--seed", "7",
                "--corruptions", "label_noise",
                "--severities", "1.0",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skipping the drift replay" in out
        payload = json.loads(out_path.read_text())
        assert "drift" not in payload
        assert payload["robustness"]["results"]

    def test_tables_writes_operating_table(self, capsys, tmp_path):
        from repro.serving.adaptive import OperatingTable

        out_path = tmp_path / "model.optable.json"
        code = cli_main(
            [
                "tables",
                "--tier", "tiny",
                "--seed", "7",
                "--corruptions", "gaussian_noise",
                "--severities", "1.0",
                "--deltas", "0.3", "0.6", "0.9",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Operating table" in out
        table = OperatingTable.load(out_path)
        assert set(table.regime_names) == {"clean", "gaussian_noise@1"}
        assert [p.delta for p in table.entry("clean").points] == [0.3, 0.6, 0.9]

    def test_run_adaptive_drift(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = cli_main(
            [
                "run",
                "--tier", "tiny",
                "--seed", "7",
                "--corruptions", "gaussian_noise",
                "--severities", "1.0",
                "--drift", "sudden",
                "--drift-batches", "9",
                "--drift-batch-size", "32",
                "--adaptive",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive table retargeting" in out
        payload = json.loads(out_path.read_text())
        assert payload["drift"]["budget_violations"] == 0
        assert payload["drift"]["recalibrations"] == 0
        assert payload["drift"]["retargets"] >= 1

    def test_run_tiny_restricted(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = cli_main(
            [
                "run",
                "--tier", "tiny",
                "--seed", "7",
                "--corruptions", "gaussian_noise",
                "--severities", "0.5", "1.0",
                "--drift", "sudden",
                "--drift-batches", "6",
                "--drift-batch-size", "16",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Robustness report" in out
        assert "Drift replay" in out
        assert "hard per-request cap" in out
        payload = json.loads(out_path.read_text())
        assert payload["drift"]["budget_violations"] == 0
        assert payload["robustness"]["monotonic_degradation"] in (True, False)
