"""Tests for confidence policies and the activation module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdl.confidence import (
    ActivationModule,
    AmbiguityPolicy,
    MarginPolicy,
    MaxProbabilityPolicy,
    ScoreThresholdPolicy,
    get_confidence_policy,
)
from repro.errors import ConfigurationError


class TestScoreThresholdPolicy:
    """The paper's two-criterion rule: terminate iff exactly one label is
    sufficiently confident."""

    def setup_method(self):
        self.policy = ScoreThresholdPolicy()

    def test_single_confident_label_terminates(self):
        probs = np.array([[0.9, 0.1, 0.05]])
        verdict = self.policy.assess(probs, 0.5, scores_are_probabilities=True)
        assert verdict.terminate[0]
        assert verdict.labels[0] == 0

    def test_no_confident_label_forwards(self):
        probs = np.array([[0.3, 0.2, 0.1]])
        verdict = self.policy.assess(probs, 0.5, scores_are_probabilities=True)
        assert not verdict.terminate[0]

    def test_multiple_confident_labels_forward(self):
        """The paper's second criterion: confidence on more than one label
        means the input is ambiguous and must be passed along."""
        probs = np.array([[0.8, 0.7, 0.1]])
        verdict = self.policy.assess(probs, 0.5, scores_are_probabilities=True)
        assert not verdict.terminate[0]

    def test_fig4_scenario(self):
        """Fig. 4: activation value 0.8 keeps 0.95/0.8 exits and forwards
        0.3/0.4 confidence instances."""
        probs = np.array([[0.95, 0.0], [0.8, 0.0], [0.3, 0.1], [0.4, 0.2]])
        verdict = self.policy.assess(probs, 0.8, scores_are_probabilities=True)
        np.testing.assert_array_equal(verdict.terminate, [True, True, False, False])

    def test_raw_scores_pass_through_sigmoid(self):
        scores = np.array([[5.0, -5.0]])
        verdict = self.policy.assess(scores, 0.5)
        assert verdict.terminate[0]
        assert verdict.confidence[0] == pytest.approx(1 / (1 + np.exp(-5)))


class TestMaxProbabilityPolicy:
    def test_requires_confidence_above_delta(self):
        policy = MaxProbabilityPolicy()
        probs = np.array([[0.45, 0.30, 0.25]])
        verdict = policy.assess(probs, 0.5, scores_are_probabilities=True)
        assert not verdict.terminate[0]

    def test_softmaxes_raw_scores(self):
        policy = MaxProbabilityPolicy()
        scores = np.array([[10.0, 0.0, 0.0]])
        verdict = policy.assess(scores, 0.9)
        assert verdict.terminate[0]

    def test_ambiguous_above_delta_forwards(self):
        policy = MaxProbabilityPolicy()
        probs = np.array([[0.5, 0.5, 0.0]])
        verdict = policy.assess(probs, 0.4, scores_are_probabilities=True)
        assert not verdict.terminate[0]


class TestMarginPolicy:
    def test_wide_margin_terminates(self):
        policy = MarginPolicy()
        probs = np.array([[0.8, 0.1, 0.1]])
        assert policy.assess(probs, 0.5, scores_are_probabilities=True).terminate[0]

    def test_narrow_margin_forwards(self):
        policy = MarginPolicy()
        probs = np.array([[0.45, 0.44, 0.11]])
        assert not policy.assess(probs, 0.5, scores_are_probabilities=True).terminate[0]

    def test_single_class_raises(self):
        with pytest.raises(ConfigurationError):
            MarginPolicy().assess(np.array([[1.0]]), 0.5, scores_are_probabilities=True)


class TestAmbiguityPolicy:
    def test_terminates_without_sufficient_confidence(self):
        """The ambiguity-only rule exits even on weak evidence -- the
        behaviour behind Fig. 10's high-delta accuracy collapse."""
        policy = AmbiguityPolicy()
        probs = np.array([[0.3, 0.2, 0.1]])
        assert policy.assess(probs, 0.5, scores_are_probabilities=True).terminate[0]

    def test_forwards_only_on_multi_label_confidence(self):
        policy = AmbiguityPolicy()
        probs = np.array([[0.8, 0.7, 0.1]])
        assert not policy.assess(probs, 0.5, scores_are_probabilities=True).terminate[0]

    def test_raising_delta_increases_exits(self):
        """Monotonicity: a higher delta can only turn forwards into exits."""
        policy = AmbiguityPolicy()
        rng = np.random.default_rng(0)
        probs = rng.random((100, 10))
        low = policy.assess(probs, 0.3, scores_are_probabilities=True).terminate
        high = policy.assess(probs, 0.7, scores_are_probabilities=True).terminate
        assert high.sum() >= low.sum()
        assert np.all(high[low])  # everything that exited at 0.3 still exits


class TestPolicyInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.floats(0.05, 0.95),
    )
    def test_labels_always_argmax(self, seed, delta):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(5), size=8)
        for policy in (
            MaxProbabilityPolicy(),
            MarginPolicy(),
            ScoreThresholdPolicy(),
            AmbiguityPolicy(),
        ):
            verdict = policy.assess(probs, delta, scores_are_probabilities=True)
            np.testing.assert_array_equal(verdict.labels, probs.argmax(axis=1))
            assert verdict.terminate.dtype == bool
            assert np.all(verdict.confidence >= 0)

    def test_invalid_delta_raises(self):
        for policy in (MaxProbabilityPolicy(), ScoreThresholdPolicy()):
            with pytest.raises(ConfigurationError):
                policy.assess(np.ones((1, 3)), 1.5, scores_are_probabilities=True)


class TestActivationModule:
    def test_default_policy_is_two_criterion_rule(self):
        module = ActivationModule()
        assert isinstance(module.policy, ScoreThresholdPolicy)

    def test_runtime_delta_override(self):
        module = ActivationModule(delta=0.9)
        probs = np.array([[0.6, 0.1]])
        assert not module.decide(probs, scores_are_probabilities=True).terminate[0]
        assert module.decide(probs, 0.5, scores_are_probabilities=True).terminate[0]

    def test_policy_by_name(self):
        module = ActivationModule(policy="margin")
        assert isinstance(module.policy, MarginPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            ActivationModule(policy="oracle")

    def test_get_policy_passthrough(self):
        inst = MarginPolicy()
        assert get_confidence_policy(inst) is inst

    def test_invalid_delta_raises(self):
        with pytest.raises(ConfigurationError):
            ActivationModule(delta=2.0)
