"""Cross-module integration tests: determinism, checkpoint round-trips of
trained systems, runner CLI, and cost-model consistency on the real
architectures."""

import numpy as np

from repro.cdl.statistics import evaluate_cdln
from repro.cdl.training import CdlTrainingConfig, train_cdln
from repro.data.synthetic_mnist import make_dataset_pair
from repro.energy.models import opcount_energy
from repro.experiments.runner import main as runner_main
from repro.nn.serialization import load_network, save_network
from repro.ops.counting import cumulative_ops


class TestDeterminism:
    def test_train_cdln_fully_deterministic(self, tiny_datasets):
        """Same data + same seed => identical cascade decisions."""
        train, test = tiny_datasets
        config = CdlTrainingConfig(
            architecture="mnist_3c", baseline_epochs=1, gain_epsilon=None
        )
        a = train_cdln(train, config=config, rng=123)
        b = train_cdln(train, config=config, rng=123)
        ra = a.cdln.predict(test.images, delta=0.6)
        rb = b.cdln.predict(test.images, delta=0.6)
        np.testing.assert_array_equal(ra.labels, rb.labels)
        np.testing.assert_array_equal(ra.exit_stages, rb.exit_stages)

    def test_different_seed_changes_model(self, tiny_datasets):
        train, _ = tiny_datasets
        config = CdlTrainingConfig(
            architecture="mnist_3c", baseline_epochs=1, gain_epsilon=None
        )
        a = train_cdln(train, config=config, rng=1)
        b = train_cdln(train, config=config, rng=2)
        assert not np.array_equal(
            a.baseline.layers[0].params["weight"],
            b.baseline.layers[0].params["weight"],
        )


class TestCheckpointedCascade:
    def test_baseline_round_trip_preserves_cascade(
        self, trained_3c, tiny_test_set, tmp_path
    ):
        """Saving and reloading the backbone must not perturb conditional
        decisions: the reloaded baseline plugged into a fresh CDLN with the
        same (shared) classifiers reproduces every exit."""
        path = save_network(trained_3c.baseline, tmp_path / "backbone.npz")
        reloaded = load_network(path)
        clone = trained_3c.cdln.clone_with_stages(
            [s.name for s in trained_3c.cdln.linear_stages]
        )
        clone.baseline = reloaded
        a = trained_3c.cdln.predict(tiny_test_set.images[:60], delta=0.6)
        b = clone.predict(tiny_test_set.images[:60], delta=0.6)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.exit_stages, b.exit_stages)


class TestCostModelConsistency:
    def test_exit_cost_equals_backbone_plus_classifiers(self, trained_3c):
        """The cost table must be exactly decomposable: each linear exit =
        backbone prefix + the classifiers evaluated so far."""
        cdln = trained_3c.cdln
        table = cdln.path_cost_table()
        lc_total = 0
        for idx, stage in enumerate(cdln.linear_stages):
            lc_total += stage.classifier.op_cost().total
            backbone = cumulative_ops(cdln.baseline, stage.attach_index + 1).total
            assert table.exit_totals()[idx] == backbone + lc_total

    def test_energy_monotone_in_ops(self, trained_3c):
        """More operations can never cost less energy under the model."""
        table = trained_3c.cdln.path_cost_table()
        energies = [opcount_energy(c) for c in table.exit_costs]
        assert all(b >= a for a, b in zip(energies, energies[1:]))

    def test_average_ops_between_extremes(self, trained_3c, tiny_test_set):
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        totals = trained_3c.cdln.path_cost_table().exit_totals()
        assert totals.min() <= ev.ops.average_ops <= totals.max()


class TestAccuracyVsDatasetDifficulty:
    def test_harder_dataset_lowers_baseline_accuracy(self):
        """Sanity of the difficulty machinery end to end: a generator with
        a heavier hard tail must yield a harder learning problem."""
        from repro.data.synthetic_mnist import SyntheticMnistConfig
        from repro.nn import Adam, Trainer
        from repro.cdl.architectures import mnist_3c

        easy_cfg = SyntheticMnistConfig(difficulty_alpha=0.5, difficulty_beta=6.0)
        hard_cfg = SyntheticMnistConfig(difficulty_alpha=6.0, difficulty_beta=0.5)
        accuracies = {}
        for name, cfg in (("easy", easy_cfg), ("hard", hard_cfg)):
            train, test = make_dataset_pair(400, 200, config=cfg, rng=5)
            net, _ = mnist_3c(rng=1)
            Trainer(
                net, loss="softmax_cross_entropy", optimizer=Adam(0.005), rng=2
            ).fit(train.images, train.labels, epochs=2)
            accuracies[name] = float(
                (net.predict_labels(test.images) == test.labels).mean()
            )
        assert accuracies["easy"] > accuracies["hard"]


class TestRunnerCli:
    def test_unknown_scale_returns_error(self):
        assert runner_main(["galactic"]) == 2

    def test_tiny_run_prints_every_experiment(self, capsys, tiny_scale):
        # Uses the session cache populated by the fixtures, so this is fast.
        assert runner_main(["tiny", "7"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table III", "Fig. 5", "Fig. 9", "Fig. 10", "Table IV"):
            assert marker in out
