"""Tests for the gain criterion, stage admission, and Algorithm 1."""

import pytest

from repro.cdl.architectures import ARCHITECTURES, build_architecture, mnist_2c, mnist_3c
from repro.cdl.gain import (
    AdmissionResult,
    admit_stages,
    evaluate_stage_gains,
    render_gain_table,
    stage_gain,
)
from repro.cdl.statistics import evaluate_baseline_accuracy, evaluate_cdln
from repro.cdl.training import CdlTrainingConfig, train_cdln
from repro.errors import ConfigurationError


class TestStageGainFormula:
    def test_pure_savings(self):
        # Everything classified at a stage costing half the baseline.
        assert stage_gain(100.0, 50.0, classified=10, reached=10) == 500.0

    def test_pure_penalty(self):
        # Nothing classified: gain is the overhead on every forwarded input.
        assert stage_gain(100.0, 50.0, classified=0, reached=10) == -500.0

    def test_break_even(self):
        # (100-50)*5 - 50*5 == 0
        assert stage_gain(100.0, 50.0, classified=5, reached=10) == 0.0

    def test_invalid_counts_raise(self):
        with pytest.raises(ConfigurationError):
            stage_gain(100.0, 50.0, classified=5, reached=3)
        with pytest.raises(ConfigurationError):
            stage_gain(100.0, 50.0, classified=-1, reached=3)


class TestEvaluateStageGains:
    def test_diagnostics_flow_conservation(self, trained_3c_all_taps, tiny_test_set):
        gains = evaluate_stage_gains(
            trained_3c_all_taps.cdln, tiny_test_set.images, delta=0.6
        )
        assert gains[0].reached == len(tiny_test_set)
        for prev, nxt in zip(gains, gains[1:]):
            assert nxt.reached == prev.reached - prev.classified

    def test_render_table(self, trained_3c_all_taps, tiny_test_set):
        gains = evaluate_stage_gains(
            trained_3c_all_taps.cdln, tiny_test_set.images[:50], delta=0.6
        )
        text = render_gain_table(gains)
        for gain in gains:
            assert gain.stage_name in text


class TestAdmission:
    def test_keeps_first_stage(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln.clone_with_stages(
            [s.name for s in trained_3c_all_taps.cdln.linear_stages]
        )
        result = admit_stages(cdln, tiny_test_set.images, delta=0.6)
        assert "O1" in result.kept

    def test_huge_epsilon_drops_all_but_first(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln.clone_with_stages(
            [s.name for s in trained_3c_all_taps.cdln.linear_stages]
        )
        result = admit_stages(
            cdln, tiny_test_set.images, epsilon=1e12, delta=0.6
        )
        assert result.kept == ["O1"]
        assert set(result.dropped) == {"O2", "O3"}

    def test_kept_stages_have_positive_gain(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln.clone_with_stages(
            [s.name for s in trained_3c_all_taps.cdln.linear_stages]
        )
        result = admit_stages(cdln, tiny_test_set.images, delta=0.6)
        for diag in result.diagnostics:
            if diag.kept and diag.stage_name != "O1":
                assert diag.gain > 0

    def test_render(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln.clone_with_stages(
            [s.name for s in trained_3c_all_taps.cdln.linear_stages]
        )
        result = admit_stages(cdln, tiny_test_set.images[:50], delta=0.6)
        text = result.render()
        assert "stage" in text and ("keep" in text or "drop" in text)


class TestArchitectures:
    def test_table1_geometry(self):
        """Table I: 28x28 -> C1 24x24x6 -> P1 12x12x6 -> C2 8x8x12 ->
        P2 4x4x12 -> FC 10."""
        net, spec = mnist_2c(rng=0)
        shapes = [s for _, _, s in net.layer_shapes()]
        assert shapes[0] == (6, 24, 24)
        assert shapes[1] == (6, 12, 12)
        assert shapes[2] == (12, 8, 8)
        assert shapes[3] == (12, 4, 4)
        assert shapes[-1] == (10,)
        assert spec.attach_indices == (1,)

    def test_table2_geometry(self):
        """Table II: 28x28 -> C1 26x26x3 -> P1 13x13x3 -> C2 10x10x6 ->
        P2 5x5x6 -> C3 3x3x9 -> P3 3x3x9 -> FC 10."""
        net, spec = mnist_3c(rng=0)
        shapes = [s for _, _, s in net.layer_shapes()]
        assert shapes[0] == (3, 26, 26)
        assert shapes[1] == (3, 13, 13)
        assert shapes[2] == (6, 10, 10)
        assert shapes[3] == (6, 5, 5)
        assert shapes[4] == (9, 3, 3)
        assert shapes[5] == (9, 3, 3)
        assert shapes[-1] == (10,)
        assert spec.attach_indices == (1, 3)
        assert spec.all_tap_indices == (1, 3, 5)

    def test_layer_names_match_paper(self):
        net, _ = mnist_3c(rng=0)
        names = [layer.name for layer in net.layers]
        assert names == ["C1", "P1", "C2", "P2", "C3", "P3", "flatten", "FC"]

    def test_paper_recipe_activations(self):
        net, _ = mnist_3c(rng=0, recipe="paper")
        assert net.layers[0].activation.name == "sigmoid"
        assert net.layers[-1].activation.name == "sigmoid"

    def test_modern_recipe_activations(self):
        net, _ = mnist_3c(rng=0, recipe="modern")
        assert net.layers[0].activation.name == "relu"
        assert net.layers[-1].activation.name == "softmax"

    def test_unknown_architecture_raises(self):
        with pytest.raises(ConfigurationError):
            build_architecture("mnist_9c")

    def test_unknown_recipe_raises(self):
        with pytest.raises(ConfigurationError):
            mnist_2c(rng=0, recipe="quantum")

    def test_registry_complete(self):
        assert set(ARCHITECTURES) == {"mnist_2c", "mnist_3c"}


class TestTrainCdln:
    def test_end_to_end_produces_working_cascade(self, trained_3c, tiny_test_set):
        assert trained_3c.cdln.is_fitted
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        # Even at tiny scale the cascade must clearly beat chance and
        # save operations.
        assert ev.accuracy > 0.5
        assert ev.ops_improvement > 1.0

    def test_admission_recorded(self, trained_3c):
        assert isinstance(trained_3c.admission, AdmissionResult)
        assert "O1" in trained_3c.admission.kept

    def test_baseline_history_populated(self, trained_3c):
        assert len(trained_3c.baseline_history.epochs) >= 1

    def test_pretrained_baseline_reused(self, trained_3c, tiny_datasets):
        train, _ = tiny_datasets
        config = CdlTrainingConfig(
            architecture="mnist_3c", baseline_epochs=1, gain_epsilon=None
        )
        result = train_cdln(
            train, config=config, baseline=trained_3c.baseline, rng=0
        )
        assert result.baseline is trained_3c.baseline
        assert len(result.baseline_history.epochs) == 0

    def test_bad_architecture_in_config_raises(self):
        with pytest.raises(ConfigurationError):
            CdlTrainingConfig(architecture="lenet")

    def test_cdln_accuracy_not_worse_than_baseline_margin(
        self, trained_3c, tiny_test_set
    ):
        """Table III shape, with tiny-scale tolerance: the CDLN must stay
        within 3 points of the baseline (at bench scale it beats it)."""
        base = evaluate_baseline_accuracy(trained_3c.cdln, tiny_test_set)
        ev = evaluate_cdln(trained_3c.cdln, tiny_test_set, delta=0.6)
        assert ev.accuracy >= base - 0.03
