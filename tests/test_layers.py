"""Tests for all layer types: geometry, forward values, gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import (
    ActivationLayer,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    layer_from_config,
)

RNG = np.random.default_rng(0)


def _tol(float64_value: float, float32_value: float) -> float:
    """Precision-matched tolerance for the active compute dtype."""
    from repro.nn.compute import active_policy

    return float64_value if active_policy().dtype == np.float64 else float32_value


def _loss_through(layer, x, upstream):
    out = layer.forward(x, training=True)
    return float(np.sum(out * upstream))


def _check_input_gradient(layer, x, gradcheck, atol=None):
    # Gradients are checked against a finite difference computed in the
    # layer's own dtype, so the band scales with that dtype's precision.
    atol = _tol(1e-6, 2e-2) if atol is None else atol
    x = x.astype(layer.params["weight"].dtype) if layer.params else x
    upstream = np.random.default_rng(99).normal(size=layer.forward(x).shape)
    layer.forward(x, training=True)
    analytic = layer.backward(upstream)
    numeric = gradcheck(lambda: _loss_through(layer, x, upstream), x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def _check_param_gradient(layer, x, key, gradcheck, atol=None):
    atol = _tol(1e-6, 2e-2) if atol is None else atol
    upstream = np.random.default_rng(98).normal(size=layer.forward(x).shape)
    layer.forward(x, training=True)
    layer.backward(upstream)
    analytic = layer.grads[key]
    numeric = gradcheck(lambda: _loss_through(layer, x, upstream), layer.params[key])
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestConv2D:
    def make(self, activation="sigmoid"):
        layer = Conv2D(4, 3, activation=activation)
        layer.build((2, 6, 6), np.random.default_rng(1))
        return layer

    def test_output_shape(self):
        layer = self.make()
        assert layer.output_shape == (4, 4, 4)
        out = layer.forward(RNG.random((3, 2, 6, 6)))
        assert out.shape == (3, 4, 4, 4)

    def test_param_shapes_and_count(self):
        layer = self.make()
        assert layer.params["weight"].shape == (4, 2, 3, 3)
        assert layer.params["bias"].shape == (4,)
        assert layer.num_params == 4 * 2 * 9 + 4

    def test_identity_activation_matches_naive_conv(self):
        layer = self.make(activation="identity")
        x = RNG.random((1, 2, 6, 6))
        out = layer.forward(x)
        w, b = layer.params["weight"], layer.params["bias"]
        naive = np.zeros((1, 4, 4, 4))
        for m in range(4):
            for i in range(4):
                for j in range(4):
                    naive[0, m, i, j] = np.sum(x[0, :, i:i+3, j:j+3] * w[m]) + b[m]
        np.testing.assert_allclose(
            out, naive, rtol=_tol(1e-10, 1e-4), atol=_tol(0, 1e-5)
        )

    def test_input_gradient(self, gradcheck):
        layer = self.make()
        _check_input_gradient(layer, RNG.random((2, 2, 6, 6)), gradcheck)

    @pytest.mark.parametrize("key", ["weight", "bias"])
    def test_param_gradients(self, key, gradcheck):
        layer = self.make()
        _check_param_gradient(layer, RNG.random((2, 2, 6, 6)), key, gradcheck)

    def test_backward_without_forward_raises(self):
        layer = self.make()
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 4, 4, 4)))

    def test_wrong_input_shape_raises(self):
        layer = self.make()
        with pytest.raises(ShapeError):
            layer.forward(RNG.random((1, 3, 6, 6)))

    def test_bad_geometry_raises(self):
        with pytest.raises(ShapeError):
            Conv2D(0, 3)
        with pytest.raises(ShapeError):
            Conv2D(3, 3, stride=0)

    def test_build_rejects_flat_input(self):
        with pytest.raises(ShapeError):
            Conv2D(3, 3).build((10,), np.random.default_rng(0))

    def test_padding_preserves_size(self):
        layer = Conv2D(2, 3, padding=1)
        layer.build((1, 5, 5), np.random.default_rng(0))
        assert layer.output_shape == (2, 5, 5)


class TestMaxPool2D:
    def test_forward_values(self):
        layer = MaxPool2D(2)
        layer.build((1, 4, 4), None)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_gradient_routes_to_argmax(self):
        layer = MaxPool2D(2)
        layer.build((1, 4, 4), None)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(grad[0, 0], expected)

    def test_input_gradient_numeric(self, gradcheck):
        layer = MaxPool2D(2)
        layer.build((2, 4, 4), None)
        # Distinct values so the argmax is stable under perturbation.
        x = np.random.default_rng(5).permutation(64).astype(float).reshape(2, 2, 4, 4)
        _check_input_gradient(layer, x, gradcheck, atol=1e-5)

    def test_unit_window_is_identity(self):
        layer = MaxPool2D(1)
        layer.build((3, 5, 5), None)
        x = RNG.random((2, 3, 5, 5))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)
        g = RNG.random((2, 3, 5, 5))
        np.testing.assert_array_equal(layer.backward(g), g)

    def test_table2_p3_geometry(self):
        """Table II lists P3 with the same 3x3 geometry as C3."""
        layer = MaxPool2D(1)
        layer.build((9, 3, 3), None)
        assert layer.output_shape == (9, 3, 3)


class TestAvgPool2D:
    def test_forward_values(self):
        layer = AvgPool2D(2)
        layer.build((1, 2, 2), None)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert layer.forward(x)[0, 0, 0, 0] == pytest.approx(2.5)

    def test_gradient_spreads_uniformly(self):
        layer = AvgPool2D(2)
        layer.build((1, 4, 4), None)
        layer.forward(RNG.random((1, 1, 4, 4)), training=True)
        grad = layer.backward(np.full((1, 1, 2, 2), 4.0))
        np.testing.assert_allclose(grad, np.ones((1, 1, 4, 4)))

    def test_input_gradient_numeric(self, gradcheck):
        layer = AvgPool2D(2)
        layer.build((2, 4, 4), None)
        _check_input_gradient(layer, RNG.random((2, 2, 4, 4)), gradcheck)


class TestDense:
    def make(self, activation="sigmoid"):
        layer = Dense(3, activation=activation)
        layer.build((5,), np.random.default_rng(2))
        return layer

    def test_forward_linear(self):
        layer = self.make(activation="identity")
        x = RNG.random((2, 5))
        expected = x @ layer.params["weight"].T + layer.params["bias"]
        np.testing.assert_allclose(
            layer.forward(x), expected, rtol=_tol(1e-7, 1e-5), atol=_tol(0, 1e-6)
        )

    def test_input_gradient(self, gradcheck):
        _check_input_gradient(self.make(), RNG.random((3, 5)), gradcheck)

    @pytest.mark.parametrize("key", ["weight", "bias"])
    def test_param_gradients(self, key, gradcheck):
        _check_param_gradient(self.make(), RNG.random((3, 5)), key, gradcheck)

    def test_softmax_dense_gradient(self, gradcheck):
        _check_input_gradient(self.make(activation="softmax"), RNG.random((3, 5)), gradcheck)

    def test_requires_flat_input(self):
        with pytest.raises(ShapeError):
            Dense(3).build((2, 3, 3), np.random.default_rng(0))

    def test_bad_units_raises(self):
        with pytest.raises(ShapeError):
            Dense(0)


class TestFlatten:
    def test_round_trip(self):
        layer = Flatten()
        layer.build((2, 3, 4), None)
        assert layer.output_shape == (24,)
        x = RNG.random((5, 2, 3, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (5, 24)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestActivationLayer:
    def test_forward_and_backward(self, gradcheck):
        layer = ActivationLayer("tanh")
        layer.build((4,), None)
        _check_input_gradient(layer, RNG.normal(size=(3, 4)), gradcheck)

    def test_backward_before_forward_raises(self):
        layer = ActivationLayer("relu")
        layer.build((4,), None)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 4)))


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.build((10,), None)
        x = RNG.random((4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.5, seed=0)
        layer.build((1000,), None)
        x = np.ones((50, 1000))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        layer.build((100,), None)
        x = np.ones((2, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (grad == 0))

    def test_rate_one_rejected(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestLayerRegistry:
    def test_round_trip_config(self):
        layer = Conv2D(6, 5, activation="relu", name="C1")
        rebuilt = layer_from_config("Conv2D", layer.get_config())
        assert rebuilt.num_maps == 6
        assert rebuilt.kernel == 5
        assert rebuilt.activation.name == "relu"
        assert rebuilt.name == "C1"

    def test_unknown_class_raises(self):
        with pytest.raises(ConfigurationError):
            layer_from_config("NoSuchLayer", {})

    def test_unbuilt_layer_reports(self):
        layer = Dense(4)
        assert "unbuilt" in repr(layer)
        with pytest.raises(ConfigurationError):
            layer.forward(np.zeros((1, 4)))
