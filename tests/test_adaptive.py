"""Tests for repro.serving.adaptive: drift detection, operating tables,
retargeting, and the fair-overhead drift-replay accounting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cdl.score_cache import StageScoreCache
from repro.errors import ConfigurationError
from repro.scenarios import (
    DriftSchedule,
    DriftStream,
    Scenario,
    budgeted_drift_replay,
    replay_drift,
)
from repro.serving import (
    DeltaController,
    InferenceEngine,
    ModelRegistry,
    ServingConfig,
)
from repro.serving.adaptive import (
    AdaptiveDeltaPolicy,
    DriftDetector,
    OperatingTable,
    RegimeSignature,
    fold_exit_fractions,
    population_stability_index,
    signature_distance,
)
from repro.serving.metrics import STAGE0_QUANTILE_GRID

DELTA = 0.6


def make_signature(fractions, quantiles=None) -> RegimeSignature:
    if quantiles is None:
        quantiles = np.linspace(0.5, 0.9, len(STAGE0_QUANTILE_GRID))
    return RegimeSignature(
        exit_fractions=np.asarray(fractions, dtype=np.float64),
        stage0_quantiles=np.asarray(quantiles, dtype=np.float64),
    )


def synthetic_batch(rng, kind: str, size: int = 32):
    """(exit_stages, stage0_confidences) drawn from one of two regimes."""
    if kind == "clean":
        exits = rng.choice(3, size=size, p=(0.7, 0.2, 0.1))
        conf = np.clip(rng.normal(0.85, 0.08, size=size), 0.0, 1.0)
    else:
        exits = rng.choice(3, size=size, p=(0.2, 0.3, 0.5))
        conf = np.clip(rng.normal(0.55, 0.12, size=size), 0.0, 1.0)
    return exits, conf


def reference_for(kind: str, n: int = 4096, seed: int = 0) -> RegimeSignature:
    exits, conf = synthetic_batch(np.random.default_rng(seed), kind, size=n)
    return make_signature(
        np.bincount(exits, minlength=3) / n,
        np.quantile(conf, STAGE0_QUANTILE_GRID),
    )


@pytest.fixture(scope="module")
def table_setup(trained_3c_all_taps, tiny_test_set):
    cdln = trained_3c_all_taps.cdln
    scenarios = [
        Scenario(name="clean"),
        Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),)),
    ]
    table = OperatingTable.build(
        cdln, tiny_test_set, scenarios, reference_delta=DELTA
    )
    return cdln, tiny_test_set, table


class TestScores:
    def test_psi_zero_for_identical(self):
        h = np.array([0.5, 0.3, 0.2])
        assert population_stability_index(h, h) == pytest.approx(0.0)

    def test_psi_positive_and_symmetric_for_shift(self):
        a = np.array([0.7, 0.2, 0.1])
        b = np.array([0.2, 0.3, 0.5])
        psi = population_stability_index(a, b)
        assert psi > 0.25
        assert psi == pytest.approx(population_stability_index(b, a))

    def test_psi_handles_empty_bins(self):
        psi = population_stability_index(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        )
        assert np.isfinite(psi) and psi > 0

    def test_psi_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="equal-length"):
            population_stability_index(np.ones(2) / 2, np.ones(3) / 3)

    def test_signature_distance_terms(self):
        a = make_signature([0.7, 0.2, 0.1], [0.8] * 5)
        b = make_signature([0.7, 0.2, 0.1], [0.6] * 5)
        # Identical exits: pure quantile term, weighted.
        assert signature_distance(a, b, quantile_weight=2.0) == pytest.approx(0.4)
        assert signature_distance(a, b, quantile_weight=0.0) == pytest.approx(0.0)

    def test_fold_exit_fractions_matches_capped_replay(
        self, trained_3c_all_taps, tiny_test_set
    ):
        """Folding the uncapped histogram at the cap must reproduce the
        capped executor's histogram exactly (exit = min(exit, cap))."""
        cdln = trained_3c_all_taps.cdln
        cache = StageScoreCache.build(cdln, tiny_test_set.images)
        n = cache.num_inputs
        free = np.bincount(cache.exit_stages(DELTA), minlength=cache.num_stages) / n
        for cap in range(cache.num_stages):
            capped = (
                np.bincount(
                    cache.exit_stages(DELTA, max_stage=cap),
                    minlength=cache.num_stages,
                )
                / n
            )
            np.testing.assert_allclose(fold_exit_fractions(free, cap), capped)

    def test_fold_no_cap_copies(self):
        f = np.array([0.5, 0.5])
        out = fold_exit_fractions(f, None)
        np.testing.assert_array_equal(out, f)
        assert out is not f


class TestDriftDetector:
    def test_fires_on_sudden_shift_within_bound(self):
        rng = np.random.default_rng(1)
        detector = DriftDetector(reference_for("clean"))
        for _ in range(10):
            assert detector.observe(*synthetic_batch(rng, "clean")) is None
        fired_after = None
        for t in range(6):
            event = detector.observe(*synthetic_batch(rng, "shifted"))
            if event is not None:
                fired_after = t + 1
                break
        assert fired_after is not None and fired_after <= 3
        assert event.kind == "drift"
        assert event.score >= detector.threshold
        assert not detector.armed

    def test_quiet_on_clean_replay(self):
        """False-trigger bound: many clean batches, several stream seeds,
        not a single event and scores well under the threshold."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            detector = DriftDetector(reference_for("clean"))
            for _ in range(30):
                assert detector.observe(*synthetic_batch(rng, "clean")) is None
            assert detector.last_score < detector.threshold

    def test_recovery_rearms(self):
        rng = np.random.default_rng(2)
        detector = DriftDetector(reference_for("clean"))
        events = []
        for kind in ["clean"] * 6 + ["shifted"] * 6 + ["clean"] * 8:
            event = detector.observe(*synthetic_batch(rng, kind))
            if event is not None:
                events.append(event.kind)
        # One drift event; once clean flushes the window, one recovery.
        assert events == ["drift", "recovery"]
        assert detector.armed

    def test_rebase_clears_and_rearms(self):
        rng = np.random.default_rng(3)
        detector = DriftDetector(reference_for("clean"))
        for kind in ["clean"] * 6 + ["shifted"] * 4:
            detector.observe(*synthetic_batch(rng, kind))
        assert not detector.armed
        detector.rebase(reference_for("shifted"))
        assert detector.armed and detector.observations == 0
        # Quiet against the new reference.
        for _ in range(8):
            assert detector.observe(*synthetic_batch(rng, "shifted")) is None

    def test_min_observations_gate(self):
        rng = np.random.default_rng(4)
        detector = DriftDetector(reference_for("clean"), min_observations=3)
        # Even wildly shifted traffic cannot fire before the gate.
        for _ in range(2):
            assert detector.observe(*synthetic_batch(rng, "shifted")) is None
            assert detector.last_score is None

    def test_window_signature_recent(self):
        rng = np.random.default_rng(5)
        detector = DriftDetector(reference_for("clean"), window=4)
        for kind in ["clean"] * 3 + ["shifted"]:
            detector.observe(*synthetic_batch(rng, kind))
        full = detector.window_signature()
        recent = detector.window_signature(recent=1)
        ref = detector.reference
        # The fresh tail is further from clean than the diluted window.
        assert signature_distance(recent, ref) > signature_distance(full, ref)

    def test_validation(self):
        ref = reference_for("clean")
        with pytest.raises(ConfigurationError, match="threshold"):
            DriftDetector(ref, threshold=0.0)
        with pytest.raises(ConfigurationError, match="window"):
            DriftDetector(ref, window=0)
        with pytest.raises(ConfigurationError, match="quantile_weight"):
            DriftDetector(ref, quantile_weight=-1)
        detector = DriftDetector(ref)
        with pytest.raises(ConfigurationError, match="no observations"):
            detector.window_signature()
        with pytest.raises(ConfigurationError, match="out of range"):
            detector.observe(np.array([7]), np.array([0.5]))


class TestSignatureMerge:
    """Count-weighted cross-replica merge (the PR-9 bugfix)."""

    def _split_signatures(self, sizes, seed=0):
        """One pooled sample split into per-replica windows of given sizes."""
        rng = np.random.default_rng(seed)
        exits, conf = synthetic_batch(rng, "noise", size=sum(sizes))
        parts, start = [], 0
        for size in sizes:
            sl = slice(start, start + size)
            parts.append(
                RegimeSignature(
                    exit_fractions=np.bincount(exits[sl], minlength=3) / size,
                    stage0_quantiles=np.quantile(
                        conf[sl], STAGE0_QUANTILE_GRID
                    ),
                    count=size,
                )
            )
            start += size
        pooled_fractions = np.bincount(exits, minlength=3) / len(exits)
        return parts, pooled_fractions

    def test_merge_recovers_pooled_histogram_exactly(self):
        parts, pooled = self._split_signatures([700, 60, 12])
        merged = RegimeSignature.merge(parts)
        np.testing.assert_allclose(merged.exit_fractions, pooled, atol=1e-12)
        assert merged.count == 772

    def test_unweighted_average_biases_psi(self):
        # Regression: a 700-observation replica and a 12-observation
        # replica merged by plain fraction averaging yield a histogram no
        # window actually observed; the PSI against the true pooled
        # histogram is materially wrong, while the count-weighted merge
        # is exact.  (Uneven windows are the norm in a fleet -- replicas
        # restart, shed, and dispatch unevenly.)
        parts, pooled = self._split_signatures([700, 12], seed=3)
        merged = RegimeSignature.merge(parts)
        naive = np.mean([p.exit_fractions for p in parts], axis=0)
        psi_merged = population_stability_index(pooled, merged.exit_fractions)
        psi_naive = population_stability_index(pooled, naive)
        assert psi_merged == pytest.approx(0.0, abs=1e-12)
        assert psi_naive > psi_merged

    def test_merge_single_is_identity(self):
        parts, _ = self._split_signatures([64])
        merged = RegimeSignature.merge(parts)
        np.testing.assert_allclose(
            merged.exit_fractions, parts[0].exit_fractions
        )
        assert merged.count == parts[0].count

    def test_merge_validation(self):
        good = RegimeSignature(
            np.array([0.5, 0.3, 0.2]), np.linspace(0.4, 0.9, 5), count=32
        )
        with pytest.raises(ConfigurationError, match="zero"):
            RegimeSignature.merge([])
        countless = make_signature([0.5, 0.3, 0.2])  # count defaults to 0
        with pytest.raises(ConfigurationError, match="count"):
            RegimeSignature.merge([good, countless])
        other = RegimeSignature(
            np.array([0.6, 0.4]), np.linspace(0.4, 0.9, 5), count=8
        )
        with pytest.raises(ConfigurationError, match="stage counts"):
            RegimeSignature.merge([good, other])

    def test_observe_signature_gates_then_fires(self):
        detector = DriftDetector(
            reference_for("clean"), threshold=0.25, min_observations=3
        )
        rng = np.random.default_rng(9)
        events = []
        for i in range(6):
            exits, conf = synthetic_batch(rng, "noise", size=256)
            signature = RegimeSignature(
                exit_fractions=np.bincount(exits, minlength=3) / 256,
                stage0_quantiles=np.quantile(conf, STAGE0_QUANTILE_GRID),
                count=256,
            )
            event = detector.observe_signature(signature)
            if i < 2:
                assert event is None, "min_observations must gate the score"
            if event is not None:
                events.append((i, event))
        assert events, "a sustained shifted fleet signature must fire"
        assert events[0][1].kind == "drift"


class TestOperatingTable:
    def test_build_contents(self, table_setup):
        _, _, table = table_setup
        assert set(table.regime_names) == {"clean", "noise"}
        assert table.reference_regime == "clean"
        assert "clean" in table and "nope" not in table
        entry = table.entry("noise")
        assert entry.num_samples > 0
        deltas = [p.delta for p in entry.points]
        assert deltas == sorted(deltas) and len(deltas) == 19
        for point in entry.points:
            assert point.mean_ops > 0
            assert 0.0 <= point.accuracy <= 1.0
            assert abs(sum(point.exit_fractions) - 1.0) < 1e-9
        with pytest.raises(ConfigurationError, match="unknown regime"):
            table.entry("nope")

    def test_json_round_trip(self, table_setup, tmp_path):
        _, _, table = table_setup
        path = table.save(tmp_path / "model.npz.optable.json")
        loaded = OperatingTable.load(path)
        assert loaded.regime_names == table.regime_names
        assert loaded.reference_regime == table.reference_regime
        assert loaded.reference_delta == table.reference_delta
        assert loaded.stage_names == table.stage_names
        for name in table.regime_names:
            a, b = table.entry(name), loaded.entry(name)
            assert a.num_samples == b.num_samples
            assert a.scenario_spec == b.scenario_spec
            np.testing.assert_allclose(
                a.signature.exit_fractions, b.signature.exit_fractions
            )
            np.testing.assert_allclose(
                a.signature.stage0_quantiles, b.signature.stage0_quantiles
            )
            assert a.points == b.points

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ConfigurationError, match="schema"):
            OperatingTable.load(path)

    def test_default_path(self):
        assert (
            OperatingTable.default_path("ckpt/model.npz").name
            == "model.npz.optable.json"
        )

    def test_match_identifies_own_regimes(self, table_setup):
        _, _, table = table_setup
        for name in table.regime_names:
            signature = table.entry(name).signature_at(DELTA)
            matched, distance = table.match(signature, delta=DELTA)
            assert matched == name
            assert distance == pytest.approx(0.0, abs=1e-12)

    def test_match_respects_depth_cap(self, table_setup):
        _, _, table = table_setup
        capped = table.entry("noise").signature_at(DELTA, max_stage=0)
        matched, _ = table.match(capped, delta=DELTA, max_stage=0)
        assert matched == "noise"

    def test_retarget_matches_offline_optimal(self, table_setup):
        """retarget() must land on the δ a live calibration over the very
        same scenario sample would pick (same grid, same budget)."""
        cdln, base, table = table_setup
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        grid = tuple(p.delta for p in table.entry("noise").points)
        controller = DeltaController(target_mean_ops=target, delta_grid=grid)
        point = controller.retarget(table, "noise")
        offline = DeltaController(target_mean_ops=target, delta_grid=grid)
        realized = Scenario(
            name="noise", corruptions=(("gaussian_noise", 1.0),)
        ).realize(base)
        offline.calibrate(cdln, realized.images)
        assert controller.delta == pytest.approx(offline.delta, abs=1e-12)
        assert point.mean_ops == pytest.approx(
            offline.calibration.point_for_delta(offline.delta).mean_ops,
            rel=1e-9,
        )

    def test_retarget_folds_hard_budget_cap(self, table_setup):
        """With a hard budget, retarget must install the *capped* curve --
        the same folding a live calibrate() applies -- not the uncapped
        table points."""
        cdln, base, table = table_setup
        totals = cdln.path_cost_table().exit_totals()
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        # A budget that only affords the cheapest exit: cap at stage 0.
        controller = DeltaController(
            target_mean_ops=target, hard_ops_budget=float(totals[0])
        )
        point = controller.retarget(table, "noise")
        # Every input force-exits at stage 0, so every curve point must
        # predict exactly the stage-0 exit cost.
        assert point.mean_ops == pytest.approx(float(totals[0]))
        for p in controller.calibration.points:
            assert p.mean_ops == pytest.approx(float(totals[0]))
            assert p.exit_fractions[0] == pytest.approx(1.0)
        # And it agrees with a live capped calibration on the same sample.
        grid = tuple(p.delta for p in table.entry("noise").points)
        live = DeltaController(
            target_mean_ops=target,
            hard_ops_budget=float(totals[0]),
            delta_grid=grid,
        )
        realized = Scenario(
            name="noise", corruptions=(("gaussian_noise", 1.0),)
        ).realize(base)
        live.calibrate(cdln, realized.images)
        for table_point, live_point in zip(
            controller.calibration.points, live.calibration.points
        ):
            assert table_point.mean_ops == pytest.approx(live_point.mean_ops)

    def test_retarget_unsatisfiable_hard_budget(self, table_setup):
        cdln, _, table = table_setup
        totals = cdln.path_cost_table().exit_totals()
        controller = DeltaController(
            target_mean_ops=1.0, hard_ops_budget=float(totals[0]) / 2
        )
        with pytest.raises(ConfigurationError, match="below the cheapest exit"):
            controller.retarget(table, "noise")

    def test_legacy_table_without_exit_totals_retargets_uncapped(
        self, table_setup
    ):
        cdln, _, table = table_setup
        payload = table.to_dict()
        del payload["exit_totals"]
        legacy = OperatingTable.from_dict(payload)
        assert legacy.exit_totals == ()
        totals = cdln.path_cost_table().exit_totals()
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        controller = DeltaController(
            target_mean_ops=target, hard_ops_budget=float(totals[0])
        )
        # Falls back to the uncapped curve instead of raising.
        controller.retarget(legacy, "noise")
        assert controller.calibration is not None

    def test_load_rejects_foreign_quantile_grid(self, table_setup, tmp_path):
        _, _, table = table_setup
        payload = table.to_dict()
        regime = next(iter(payload["regimes"].values()))
        regime["signature"]["quantile_grid"] = [0.2, 0.4, 0.6, 0.8, 0.99]
        with pytest.raises(ConfigurationError, match="quantile levels"):
            OperatingTable.from_dict(payload)

    def test_retarget_requires_soft_target(self, table_setup):
        _, _, table = table_setup
        hard_only = DeltaController(hard_ops_budget=1e9)
        with pytest.raises(ConfigurationError, match="soft target"):
            hard_only.retarget(table, "clean")

    def test_registry_attachment(self, table_setup, tmp_path):
        cdln, _, table = table_setup
        registry = ModelRegistry()
        path = table.save(tmp_path / "table.json")
        entry = registry.register("m", cdln, operating_table=path)
        assert entry.operating_table.regime_names == table.regime_names
        # Direct object attachment works too.
        entry2 = registry.register("m", cdln, operating_table=table)
        assert entry2.operating_table is table

    def test_registry_attachment_rejects_stage_mismatch(
        self, table_setup, trained_3c
    ):
        _, _, table = table_setup
        registry = ModelRegistry()
        if tuple(trained_3c.cdln.stage_names) == table.stage_names:
            pytest.skip("admission kept every tap; layouts coincide")
        with pytest.raises(ConfigurationError, match="stages"):
            registry.register("other", trained_3c.cdln, operating_table=table)


class TestEngineIntegration:
    def test_adaptive_requires_soft_controller(self, table_setup):
        cdln, _, table = table_setup
        policy = AdaptiveDeltaPolicy(table)
        with pytest.raises(ConfigurationError, match="soft"):
            InferenceEngine.from_config(
                ServingConfig(model=cdln, adaptive=policy)
            )
        with pytest.raises(ConfigurationError, match="soft"):
            InferenceEngine.from_config(
                ServingConfig(
                    model=cdln,
                    controller=DeltaController(hard_ops_budget=1e9),
                    adaptive=policy,
                )
            )

    def test_prime_installs_table_calibration(self, table_setup):
        cdln, base, table = table_setup
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        controller = DeltaController(target_mean_ops=target)
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=cdln,
                controller=controller,
                adaptive=AdaptiveDeltaPolicy(table),
            )
        )
        # No lazy calibration pass needed: the table already calibrated it.
        assert not controller.needs_calibration
        assert engine.adaptive.detector is not None
        primed_delta = controller.delta
        response = engine.classify(base.images[0])
        # Served at the primed δ (observe() feedback may move it afterwards).
        assert response.delta == primed_delta

    def test_stage0_quantiles_recorded_with_adaptive(self, table_setup):
        cdln, base, table = table_setup
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=cdln,
                controller=DeltaController(target_mean_ops=target),
                adaptive=AdaptiveDeltaPolicy(table),
            )
        )
        engine.classify_many(base.images[:32])
        snap = engine.metrics.snapshot()
        assert snap.stage0_quantiles is not None
        assert snap.stage0_quantiles.shape == (len(STAGE0_QUANTILE_GRID),)
        assert np.all(np.diff(snap.stage0_quantiles) >= 0)
        assert "stage-0 confidence" in snap.render()
        # Without the adaptive loop the engine does not collect them.
        plain = InferenceEngine.from_config(
            ServingConfig(model=cdln, delta=DELTA)
        )
        plain.classify_many(base.images[:8])
        assert plain.metrics.snapshot().stage0_quantiles is None

    def test_use_model_rebinds_adaptive_policy(self, table_setup):
        cdln, base, table = table_setup
        registry = ModelRegistry()
        registry.register("m", cdln, operating_table=table)
        registry.register("bare", cdln)
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        engine = InferenceEngine.from_config(
            ServingConfig(
                registry=registry,
                model_spec="m",
                controller=DeltaController(target_mean_ops=target),
                adaptive=AdaptiveDeltaPolicy(table),
            )
        )
        # Swapping to an entry without a table is refused up front...
        with pytest.raises(ConfigurationError, match="no operating table"):
            engine.use_model("bare")
        assert engine.entry.spec == "m:1"
        # ...and a table-carrying swap rebinds + re-primes the policy.
        registry.register("m2", cdln, operating_table=table)
        engine.use_model("m2")
        assert engine.adaptive.table is registry.resolve("m2").operating_table
        assert engine.adaptive.current_regime == table.reference_regime
        engine.classify_many(base.images[:8])  # serves without detector errors

    def test_replay_retargets_on_shift(self, table_setup):
        cdln, base, table = table_setup
        result = budgeted_drift_replay(
            cdln,
            base,
            Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),)),
            DriftSchedule.sudden(3),
            batch_size=32,
            num_batches=9,
            rng=7,
            delta=DELTA,
            adaptive=True,
        )
        assert result.retargets >= 1
        assert result.hard_cap_held
        assert result.recalibrations == 0
        assert result.total_overhead_ops == 0.0
        assert result.offline_table_ops > 0.0
        regimes = [p.regime for p in result.phases]
        assert regimes[0] == "clean"
        assert "noise" in regimes[3:]
        assert np.isfinite(result.post_shift_budget_error())

    def test_replay_validation(self, table_setup, tiny_test_set):
        cdln, base, table = table_setup
        stream = DriftStream(
            tiny_test_set, tiny_test_set, DriftSchedule.sudden(1), num_batches=2
        )
        with pytest.raises(ConfigurationError, match="operating_table"):
            replay_drift(
                cdln, stream, detector=DriftDetector(reference_for("clean"))
            )
        with pytest.raises(ConfigurationError, match="target_mean_ops"):
            replay_drift(cdln, stream, operating_table=table)


class TestOverheadAccounting:
    """Regression: calibration passes must be charged explicitly to
    ``overhead_ops`` -- never folded into the served ``mean_ops`` -- so
    adaptive-vs-scheduled comparisons stay fair."""

    def test_scheduled_overhead_is_pinned(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln
        full_pass = float(cdln.path_cost_table().exit_totals()[-1])
        scenario = Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),))
        stream = DriftStream.from_scenario(
            tiny_test_set, scenario, DriftSchedule.sudden(2),
            batch_size=24, num_batches=6, rng=0,
        )
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        result = replay_drift(
            cdln, stream, target_mean_ops=target, recalibrate_every=2
        )
        # Initial calibration: the whole clean pool, charged to phase 0.
        assert result.phases[0].overhead_ops == pytest.approx(
            len(tiny_test_set) * full_pass
        )
        # Recalibrations at batches 2 and 4, each over the last 2 batches.
        assert result.recalibrations == 2
        for index in (2, 4):
            assert result.phases[index].overhead_ops == pytest.approx(
                2 * 24 * full_pass
            )
        for index in (1, 3, 5):
            assert result.phases[index].overhead_ops == 0.0
        assert result.total_overhead_ops == pytest.approx(
            (len(tiny_test_set) + 2 * 2 * 24) * full_pass
        )
        # Served cost excludes overhead: every phase's mean is bounded by
        # the deepest exit, which a folded-in calibration pass would break.
        for phase in result.phases:
            assert phase.mean_ops <= full_pass
            assert phase.num_requests == 24
        # And the two error bases actually differ.
        assert result.budget_error() > result.budget_error(
            include_overhead=False
        )

    def test_fixed_delta_replay_has_no_overhead(
        self, trained_3c_all_taps, tiny_test_set
    ):
        cdln = trained_3c_all_taps.cdln
        scenario = Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),))
        stream = DriftStream.from_scenario(
            tiny_test_set, scenario, DriftSchedule.sudden(2),
            batch_size=16, num_batches=4, rng=0,
        )
        result = replay_drift(cdln, stream, delta=DELTA)
        assert result.total_overhead_ops == 0.0
        assert result.retargets == 0
        assert np.isnan(result.budget_error())

    def test_mean_ops_overall_amortizes(self, trained_3c_all_taps, tiny_test_set):
        cdln = trained_3c_all_taps.cdln
        scenario = Scenario(name="noise", corruptions=(("gaussian_noise", 1.0),))
        stream = DriftStream.from_scenario(
            tiny_test_set, scenario, DriftSchedule.sudden(2),
            batch_size=24, num_batches=6, rng=0,
        )
        target = 0.75 * float(cdln.path_cost_table().baseline_cost.total)
        result = replay_drift(
            cdln, stream, target_mean_ops=target, recalibrate_every=2
        )
        served = result.mean_ops_overall()
        loaded = result.mean_ops_overall(include_overhead=True)
        requests = sum(p.num_requests for p in result.phases)
        assert loaded == pytest.approx(
            served + result.total_overhead_ops / requests
        )
        payload = result.to_dict()
        assert payload["overhead_ops"] == pytest.approx(result.total_overhead_ops)
        assert payload["phases"][0]["overhead_ops"] > 0
