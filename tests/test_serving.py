"""Tests for the serving subsystem: the shared cascade executor, the
micro-batched engine (sync + async facade), the model registry, the
budget-aware delta controller, and the serving metrics.

The two load-bearing properties:

* **Parity** -- the engine's answers (labels, exit stages, confidences)
  exactly match offline ``CDLN.predict`` for any interleaving of request
  arrivals, because both run the one shared executor.
* **Hard budget** -- with a hard ops budget installed, no response's cost
  ever exceeds it, for any delta and any workload (the budget becomes a
  structural depth cap, not a statistical target).
"""

import queue
import threading
from time import perf_counter

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.serving.batching import MicroBatcher, MicroBatchPolicy, collect_from_queue
from repro.serving.cascade import execute_cascade
from repro.serving.config import ServingConfig
from repro.serving.controller import DeltaController, simulate_exit_stages
from repro.serving.engine import AsyncEngine, InferenceEngine
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry


# -- shared executor -----------------------------------------------------------


class TestExecuteCascade:
    def test_matches_predict(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:60]
        offline = trained_3c.cdln.predict(images, delta=0.6)
        result = execute_cascade(trained_3c.cdln, images, 0.6)
        np.testing.assert_array_equal(result.labels, offline.labels)
        np.testing.assert_array_equal(result.exit_stages, offline.exit_stages)
        np.testing.assert_array_equal(result.confidences, offline.confidences)

    def test_records_cover_executed_stages(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:20]
        result = execute_cascade(trained_3c.cdln, images, 0.6, record_stages=True)
        assert result.stage_records is not None
        # The active set shrinks monotonically and matches the exits.
        previous = np.arange(len(images))
        for record in result.stage_records:
            assert np.isin(record.active_indices, previous).all()
            assert record.scores.shape[0] == record.active_indices.shape[0]
            exited_here = record.active_indices[record.terminated]
            np.testing.assert_array_equal(
                np.sort(exited_here),
                np.sort(np.nonzero(result.exit_stages == record.stage_index)[0]),
            )
            previous = record.active_indices[~record.terminated]

    def test_max_stage_caps_depth(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:50]
        result = execute_cascade(trained_3c.cdln, images, 0.995, max_stage=0)
        assert (result.exit_stages == 0).all()
        assert (result.labels >= 0).all()

    def test_max_stage_out_of_range(self, trained_3c, tiny_test_set):
        with pytest.raises(ConfigurationError):
            execute_cascade(
                trained_3c.cdln,
                tiny_test_set.images[:2],
                0.6,
                max_stage=len(trained_3c.cdln.stages),
            )


# -- engine parity -------------------------------------------------------------


class TestEngineParity:
    def test_any_interleaving_matches_offline(self, trained_3c, tiny_test_set):
        """Requests arriving in arbitrary waves, served in arbitrary
        micro-batch sizes, must answer exactly like one offline predict."""
        images = tiny_test_set.images[:90]
        offline = trained_3c.cdln.predict(images, delta=0.6)
        rng = np.random.default_rng(3)
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=0.6,
                policy=MicroBatchPolicy(max_batch_size=int(rng.integers(2, 17))),
            )
        )
        tickets = []
        cursor = 0
        while cursor < len(images):
            wave = int(rng.integers(1, 12))
            for image in images[cursor : cursor + wave]:
                tickets.append(engine.submit(image))
            if rng.random() < 0.5:  # sometimes flush mid-stream
                engine.flush()
            cursor += wave
        engine.flush()
        responses = [t.result(timeout=0) for t in tickets]
        assert [r.label for r in responses] == offline.labels.tolist()
        assert [r.exit_stage for r in responses] == offline.exit_stages.tolist()
        # Micro-batches slice the workload differently from the offline
        # pass; BLAS may round float32 scores differently per composition.
        float64 = trained_3c.baseline.dtype == np.float64
        np.testing.assert_allclose(
            [r.confidence for r in responses],
            offline.confidences,
            rtol=1e-9 if float64 else 1e-5,
            atol=0 if float64 else 1e-6,
        )

    def test_response_costs_come_from_cost_table(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        table = trained_3c.cdln.path_cost_table()
        totals = table.exit_totals()
        for response in engine.classify_many(tiny_test_set.images[:30]):
            assert response.ops == totals[response.exit_stage]
            assert response.energy_pj > 0
            assert response.exit_stage_name == table.stage_names[response.exit_stage]

    def test_classify_single(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        response = engine.classify(tiny_test_set.images[0])
        trace_label = trained_3c.cdln.predict(
            tiny_test_set.images[:1], delta=0.6
        ).labels[0]
        assert response.label == trace_label
        assert response.batch_size == 1
        assert response.latency_s >= 0

    def test_submit_rejects_bad_shape(self, trained_3c):
        engine = InferenceEngine(model=trained_3c.cdln)
        with pytest.raises(ShapeError):
            engine.submit(np.zeros((2, 1, 28, 28)))

    def test_needs_model_or_registry(self, trained_3c):
        with pytest.raises(ConfigurationError):
            InferenceEngine()
        with pytest.raises(ConfigurationError):
            InferenceEngine(
                config=ServingConfig(
                    model=trained_3c.cdln, registry=ModelRegistry()
                )
            )

    def test_metrics_accumulate(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=0.6,
                policy=MicroBatchPolicy(max_batch_size=8),
            )
        )
        engine.classify_many(tiny_test_set.images[:20])
        snap = engine.metrics.snapshot()
        assert snap.requests == 20
        assert snap.batches == 3  # 8 + 8 + 4
        assert snap.exit_stage_counts.sum() == 20
        assert snap.mean_ops > 0
        assert snap.latency_p95_s >= snap.latency_p50_s >= 0
        assert "Serving metrics" in snap.render()

    def test_queue_depth_counts_waiting_plus_inflight(
        self, trained_3c, tiny_test_set
    ):
        """The unified depth meaning: a batch being served still occupies
        the queue (waiting + in-flight), on every facade."""
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=0.6,
                policy=MicroBatchPolicy(max_batch_size=4),
            )
        )
        for image in tiny_test_set.images[:6]:
            engine.submit(image)
        assert engine.queue_depth() == engine.pending_count() == 6
        observed = []
        inner = engine._process_batch_inflight

        def spy(batch, *, queue_depth=None):
            observed.append(engine.queue_depth())
            return inner(batch, queue_depth=queue_depth)

        engine._process_batch_inflight = spy
        engine.flush()
        # First batch: 4 in flight + 2 waiting; second: 2 in flight.
        assert observed == [6, 2]
        assert engine.queue_depth() == 0


class TestAsyncFacade:
    def test_async_matches_offline(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:40]
        offline = trained_3c.cdln.predict(images, delta=0.6)
        engine = InferenceEngine.from_config(
            ServingConfig(
                model=trained_3c.cdln,
                delta=0.6,
                policy=MicroBatchPolicy(max_batch_size=16, max_wait_s=0.001),
            )
        )
        with AsyncEngine(engine) as server:
            tickets = [server.submit(image) for image in images]
            responses = [t.result(timeout=30.0) for t in tickets]
        assert [r.label for r in responses] == offline.labels.tolist()
        assert [r.exit_stage for r in responses] == offline.exit_stages.tolist()

    def test_submit_before_start_raises(self, trained_3c, tiny_test_set):
        server = AsyncEngine(InferenceEngine(model=trained_3c.cdln))
        with pytest.raises(ConfigurationError):
            server.submit(tiny_test_set.images[0])

    def test_concurrent_submitters(self, trained_3c, tiny_test_set):
        images = tiny_test_set.images[:32]
        offline = trained_3c.cdln.predict(images, delta=0.6)
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        results = {}

        def client(start: int, stop: int, server) -> None:
            tickets = [(i, server.submit(images[i])) for i in range(start, stop)]
            for i, ticket in tickets:
                results[i] = ticket.result(timeout=30.0)

        with AsyncEngine(engine) as server:
            threads = [
                threading.Thread(target=client, args=(i * 8, (i + 1) * 8, server))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(results) == list(range(32))
        for i in range(32):
            assert results[i].label == offline.labels[i]

    def test_stop_is_idempotent_and_restartable(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        server = AsyncEngine(engine)
        server.stop()  # not running: no-op
        server.start()
        first = server.submit(tiny_test_set.images[0]).result(timeout=30.0)
        server.stop()
        assert not server.running
        server.start()
        second = server.submit(tiny_test_set.images[0]).result(timeout=30.0)
        server.stop()
        assert first.label == second.label


# -- delta controller ----------------------------------------------------------


class TestDeltaController:
    def test_needs_some_budget(self):
        with pytest.raises(ConfigurationError):
            DeltaController()

    def test_hard_budget_never_violated(self, trained_3c, tiny_test_set):
        """Property: for any delta and any affordable hard budget, every
        response's cost stays within the budget."""
        cdln = trained_3c.cdln
        totals = cdln.path_cost_table().exit_totals()
        rng = np.random.default_rng(11)
        images = tiny_test_set.images
        for _ in range(6):
            budget = float(rng.uniform(totals[0], totals[-1] * 1.1))
            delta = float(rng.uniform(0.05, 0.95))
            controller = DeltaController(hard_ops_budget=budget, delta=delta)
            engine = InferenceEngine.from_config(
                ServingConfig(model=cdln, controller=controller)
            )
            picks = rng.choice(len(images), size=60, replace=False)
            for response in engine.classify_many(images[picks]):
                assert response.ops <= budget

    def test_unaffordable_hard_budget_raises(self, trained_3c, tiny_test_set):
        totals = trained_3c.cdln.path_cost_table().exit_totals()
        controller = DeltaController(hard_ops_budget=totals[0] * 0.5)
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, controller=controller)
        )
        with pytest.raises(ConfigurationError):
            engine.classify(tiny_test_set.images[0])

    def test_simulation_matches_executor(self, trained_3c, tiny_test_set):
        """The calibration simulation must reproduce real exits exactly."""
        cdln = trained_3c.cdln
        images = tiny_test_set.images[:80]
        features = cdln.extract_features(images)
        stage_scores = [
            stage.classifier.confidence_scores(features[stage.attach_index])
            for stage in cdln.linear_stages
        ]
        for delta in (0.3, 0.6, 0.9):
            simulated = simulate_exit_stages(
                stage_scores,
                cdln.activation_module,
                delta,
                len(cdln.stages),
                num_inputs=len(images),
            )
            real = cdln.predict(images, delta=delta).exit_stages
            np.testing.assert_array_equal(simulated, real)

    def test_soft_target_tracks_budget_on_calibration_workload(
        self, trained_3c, tiny_test_set
    ):
        """Serving the calibration workload itself must land exactly on the
        grid point closest to the target (the simulation is exact)."""
        cdln = trained_3c.cdln
        baseline = float(cdln.path_cost_table().baseline_cost.total)
        target = 0.8 * baseline
        controller = DeltaController(target_mean_ops=target, feedback_smoothing=0.0)
        engine = InferenceEngine.from_config(
                ServingConfig(model=cdln, controller=controller)
            )
        engine.calibrate(tiny_test_set.images)
        calibration = controller.calibration
        assert calibration is not None
        chosen = calibration.point_for_delta(controller.delta)
        best_gap = min(abs(p.mean_ops - target) for p in calibration.points)
        assert abs(chosen.mean_ops - target) == pytest.approx(best_gap)
        responses = engine.classify_many(tiny_test_set.images)
        measured = float(np.mean([r.ops for r in responses]))
        assert measured == pytest.approx(chosen.mean_ops)

    def test_lazy_calibration_on_first_batch(self, trained_3c, tiny_test_set):
        baseline = float(trained_3c.cdln.path_cost_table().baseline_cost.total)
        controller = DeltaController(target_mean_ops=0.8 * baseline)
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, controller=controller)
        )
        assert controller.needs_calibration
        # A degenerate first batch must not pin the calibration curve.
        engine.classify(tiny_test_set.images[0])
        assert controller.needs_calibration
        engine.classify_many(tiny_test_set.images[:64])
        assert not controller.needs_calibration

    def test_feedback_moves_operating_point(self, trained_3c, tiny_test_set):
        """When observed costs exceed predictions, the controller must
        lower its effective target."""
        baseline = float(trained_3c.cdln.path_cost_table().baseline_cost.total)
        controller = DeltaController(
            target_mean_ops=0.8 * baseline, feedback_smoothing=1.0
        )
        controller.calibrate(trained_3c.cdln, tiny_test_set.images)
        predicted = controller.calibration.point_for_delta(controller.delta).mean_ops
        controller.observe(predicted * 2.0, batch_size=32)
        repicked = controller.calibration.point_for_delta(controller.delta).mean_ops
        assert repicked <= predicted


# -- registry ------------------------------------------------------------------


class TestModelRegistry:
    def test_register_and_autoversion(self, trained_3c):
        registry = ModelRegistry()
        first = registry.register("mnist", trained_3c)  # TrainedCdl accepted
        second = registry.register("mnist", trained_3c.cdln)
        assert (first.version, second.version) == (1, 2)
        assert registry.get("mnist").version == 2  # latest wins
        assert registry.get("mnist", 1) is first
        assert registry.resolve("mnist:1") is first
        assert registry.versions("mnist") == (1, 2)
        assert registry.names() == ("mnist",)

    def test_warm_artifacts(self, trained_3c):
        registry = ModelRegistry()
        entry = registry.register("m", trained_3c.cdln, warm=False)
        assert not entry.is_warm
        table = trained_3c.cdln.path_cost_table()
        np.testing.assert_allclose(entry.exit_ops, table.exit_totals())
        assert entry.is_warm
        assert (entry.exit_energies_pj > 0).all()
        entry.cool()
        assert not entry.is_warm

    def test_evict(self, trained_3c):
        registry = ModelRegistry()
        registry.register("m", trained_3c.cdln)
        registry.register("m", trained_3c.cdln)
        assert registry.evict("m", 1) == 1
        assert registry.versions("m") == (2,)
        assert registry.evict("m") == 1
        with pytest.raises(ConfigurationError):
            registry.evict("m")

    def test_unknown_lookups_raise(self, trained_3c):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.get("ghost")
        registry.register("m", trained_3c.cdln)
        with pytest.raises(ConfigurationError):
            registry.get("m", 9)
        with pytest.raises(ConfigurationError):
            registry.resolve("m:one")

    def test_rejects_unfitted_and_bad_names(self, trained_3c):
        from repro.cdl.architectures import mnist_3c
        from repro.cdl.network import CDLN

        registry = ModelRegistry()
        net, spec = mnist_3c(rng=0)
        with pytest.raises(NotFittedError):
            registry.register("raw", CDLN(net, spec.attach_indices))
        with pytest.raises(ConfigurationError):
            registry.register("a:b", trained_3c.cdln)
        registry.register("ok", trained_3c.cdln, version=3)
        with pytest.raises(ConfigurationError):
            registry.register("ok", trained_3c.cdln, version=3)

    def test_engine_hot_swap(self, trained_3c, trained_2c, tiny_test_set):
        registry = ModelRegistry()
        registry.register("threec", trained_3c)
        registry.register("twoc", trained_2c)
        engine = InferenceEngine.from_config(
            ServingConfig(registry=registry, model_spec="threec", delta=0.6)
        )
        engine.classify(tiny_test_set.images[0])
        engine.use_model("twoc")
        response = engine.classify(tiny_test_set.images[1])
        assert response.model_spec == "twoc:1"


# -- batching ------------------------------------------------------------------


class TestBatching:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatchPolicy(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatchPolicy(max_wait_s=-1.0)

    def test_batcher_chunks_fifo(self):
        batcher = MicroBatcher(MicroBatchPolicy(max_batch_size=3))
        for i in range(8):
            batcher.add(i)
        assert len(batcher) == 8
        assert batcher.next_batch() == [0, 1, 2]
        assert batcher.drain() == [[3, 4, 5], [6, 7]]
        assert batcher.next_batch() == []

    def test_collect_from_queue_fills_or_times_out(self):
        source: queue.Queue = queue.Queue()
        policy = MicroBatchPolicy(max_batch_size=4, max_wait_s=0.01)
        for i in range(6):
            source.put(i)
        assert collect_from_queue(source, policy) == [0, 1, 2, 3]
        start = perf_counter()
        assert collect_from_queue(source, policy) == [4, 5]
        assert perf_counter() - start < 1.0
        assert collect_from_queue(source, policy, poll_s=0.01) is None

    def test_collect_from_queue_sentinel(self):
        source: queue.Queue = queue.Queue()
        policy = MicroBatchPolicy(max_batch_size=4, max_wait_s=0.01)
        source.put(None)
        assert collect_from_queue(source, policy) == []
        source.get_nowait()  # the sentinel was re-queued for siblings
        source.put(0)
        source.put(None)
        assert collect_from_queue(source, policy) == [0]


# -- metrics -------------------------------------------------------------------


class TestServingMetrics:
    def test_empty_snapshot(self):
        metrics = ServingMetrics(("O1", "FC"))
        snap = metrics.snapshot()
        assert snap.requests == 0
        assert snap.throughput_rps == 0.0
        assert snap.latency_p95_s == 0.0

    def test_record_and_reset(self):
        metrics = ServingMetrics(("O1", "FC"))
        metrics.record_batch(
            latencies_s=np.array([0.001, 0.002, 0.003]),
            exit_stages=np.array([0, 0, 1]),
            ops=np.array([10.0, 10.0, 30.0]),
            energies_pj=np.array([1.0, 1.0, 3.0]),
        )
        snap = metrics.snapshot()
        assert snap.requests == 3
        assert snap.exit_stage_counts.tolist() == [2, 1]
        assert snap.mean_ops == pytest.approx(50.0 / 3)
        assert snap.total_energy_pj == pytest.approx(5.0)
        assert snap.latency_p50_s == pytest.approx(0.002)
        metrics.reset()
        assert metrics.snapshot().requests == 0

    def test_rejects_empty_stage_names(self):
        with pytest.raises(ConfigurationError):
            ServingMetrics(())

    def test_small_window_p99_equals_max(self):
        # With method="higher" the quantile is always an observed sample;
        # for n < 100 both tail quantiles collapse to the window max, so a
        # tiny bench run reports a deterministic (not interpolated) tail.
        metrics = ServingMetrics(("O1", "FC"))
        latencies = np.linspace(0.001, 0.05, 37)
        metrics.record_batch(
            latencies_s=latencies,
            exit_stages=np.zeros(37, dtype=np.int64),
            ops=np.full(37, 10.0),
            energies_pj=np.full(37, 1.0),
        )
        snap = metrics.snapshot()
        assert snap.latency_p99_s == snap.latency_p999_s == latencies.max()
        assert snap.latency_p95_s <= snap.latency_p99_s

    def test_large_window_p99_is_observed_sample(self):
        metrics = ServingMetrics(("O1", "FC"))
        latencies = np.arange(1, 1001, dtype=np.float64) / 1e3
        metrics.record_batch(
            latencies_s=latencies,
            exit_stages=np.zeros(1000, dtype=np.int64),
            ops=np.full(1000, 10.0),
            energies_pj=np.full(1000, 1.0),
        )
        snap = metrics.snapshot()
        assert snap.latency_p99_s in latencies
        assert snap.latency_p99_s < snap.latency_p999_s <= latencies.max()

    def test_empty_window_tail_quantiles_zero(self):
        snap = ServingMetrics(("O1", "FC")).snapshot()
        assert snap.latency_p99_s == 0.0
        assert snap.latency_p999_s == 0.0
        assert snap.max_queue_depth == 0

    def test_max_queue_depth_high_water_mark(self):
        metrics = ServingMetrics(("O1", "FC"))
        for depth in (3, 9, 4, None):
            metrics.record_batch(
                latencies_s=np.array([0.001]),
                exit_stages=np.array([0]),
                ops=np.array([10.0]),
                energies_pj=np.array([1.0]),
                queue_depth=depth,
            )
        snap = metrics.snapshot()
        assert snap.max_queue_depth == 9
        assert "max queue depth" in snap.render()
        metrics.reset()
        assert metrics.snapshot().max_queue_depth == 0


# -- degenerate inputs ---------------------------------------------------------


class TestDegenerateInputs:
    """Empty batches, single samples and all-exit-at-stage-0 workloads must
    produce well-formed results, not incidental numpy behavior."""

    def test_classify_many_empty_array(self, trained_3c):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        assert engine.classify_many(np.empty((0, 1, 28, 28))) == []
        assert engine.metrics.snapshot().requests == 0

    def test_flush_with_nothing_pending(self, trained_3c):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        assert engine.flush() == 0

    def test_process_batch_empty_is_noop(self, trained_3c):
        controller = DeltaController(target_mean_ops=1.0, delta=0.6)
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, controller=controller)
        )
        engine._process_batch([])  # no np.stack crash, no NaN observation
        assert engine.metrics.snapshot().batches == 0

    def test_single_sample_round_trip(self, trained_3c, tiny_test_set):
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, delta=0.6)
        )
        response = engine.classify(tiny_test_set.images[0])
        offline = trained_3c.cdln.predict(tiny_test_set.images[:1], delta=0.6)
        assert response.batch_size == 1
        assert response.label == int(offline.labels[0])
        assert response.exit_stage == int(offline.exit_stages[0])

    def test_all_exit_at_stage_zero_under_tight_cap(self, trained_3c, tiny_test_set):
        totals = trained_3c.cdln.path_cost_table().exit_totals()
        budget = float(totals[0]) * 1.01  # only the first exit is affordable
        controller = DeltaController(hard_ops_budget=budget, delta=0.6)
        engine = InferenceEngine.from_config(
            ServingConfig(model=trained_3c.cdln, controller=controller)
        )
        responses = engine.classify_many(tiny_test_set.images[:32])
        assert all(r.exit_stage == 0 for r in responses)
        assert all(r.ops <= budget for r in responses)
        snap = engine.metrics.snapshot()
        assert snap.exit_stage_counts[0] == 32
        assert snap.exit_stage_counts[1:].sum() == 0

    def test_empty_predict_is_well_formed(self, trained_3c):
        result = trained_3c.cdln.predict(np.empty((0, 1, 28, 28)), delta=0.6)
        assert result.labels.shape == (0,)
        assert result.exit_stages.shape == (0,)
        assert result.confidences.shape == (0,)

    def test_score_cache_empty_build_and_replay(self, trained_3c):
        from repro.cdl.score_cache import StageScoreCache

        cache = StageScoreCache.build(trained_3c.cdln, np.empty((0, 1, 28, 28)))
        assert cache.num_inputs == 0
        assert cache.cached_stage_names == tuple(
            s.name for s in trained_3c.cdln.linear_stages
        )
        result = cache.replay(0.6)
        assert result.labels.shape == (0,)
        assert result.exit_stages.shape == (0,)
        assert cache.exit_stages(0.6).shape == (0,)
        # Depth caps and stage subsets stay valid on the empty cache.
        assert cache.exit_stages(0.6, max_stage=0).shape == (0,)

    def test_score_cache_single_sample_matches_predict(self, trained_3c, tiny_test_set):
        from repro.cdl.score_cache import StageScoreCache

        image = tiny_test_set.images[:1]
        cache = StageScoreCache.build(trained_3c.cdln, image)
        replayed = cache.replay(0.6)
        offline = trained_3c.cdln.predict(image, delta=0.6)
        np.testing.assert_array_equal(replayed.labels, offline.labels)
        np.testing.assert_array_equal(replayed.exit_stages, offline.exit_stages)
        np.testing.assert_array_equal(replayed.confidences, offline.confidences)
