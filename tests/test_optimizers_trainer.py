"""Tests for optimizers, schedules, and the training loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.nn import (
    SGD,
    Adam,
    ConstantSchedule,
    Dense,
    ExponentialDecay,
    Flatten,
    Momentum,
    Network,
    StepDecay,
    Trainer,
    get_optimizer,
)
from repro.nn.layers.base import Layer


class _QuadraticLayer(Layer):
    """f(w) = 0.5 * ||w||^2 stand-in for optimizer convergence tests."""

    def __init__(self, dim=4, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.params = {"w": rng.normal(size=dim)}
        self.grads = {"w": np.zeros(dim)}

    def build(self, input_shape, rng):
        return self._mark_built(input_shape, input_shape)

    def loss(self):
        return 0.5 * float(np.sum(self.params["w"] ** 2))

    def compute_grads(self):
        self.grads["w"] = self.params["w"].copy()


@pytest.mark.parametrize(
    "optimizer",
    [SGD(0.1), Momentum(0.05, 0.9), Momentum(0.05, 0.9, nesterov=True), Adam(0.05)],
)
def test_optimizers_descend_quadratic(optimizer):
    layer = _QuadraticLayer()
    initial = layer.loss()
    for _ in range(200):
        layer.compute_grads()
        optimizer.step([layer])
    assert layer.loss() < 1e-3 * initial


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule(0.5).learning_rate(100) == 0.5

    def test_step_decay(self):
        sched = StepDecay(1.0, step=10, factor=0.5)
        assert sched.learning_rate(0) == 1.0
        assert sched.learning_rate(10) == 0.5
        assert sched.learning_rate(25) == 0.25

    def test_exponential_decay(self):
        sched = ExponentialDecay(1.0, 0.9)
        assert sched.learning_rate(2) == pytest.approx(0.81)

    def test_optimizer_consumes_schedule(self):
        opt = SGD(StepDecay(1.0, step=1, factor=0.1))
        opt.start_epoch(2)
        assert opt.current_lr == pytest.approx(0.01)

    def test_invalid_schedules_raise(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, step=0)
        with pytest.raises(ConfigurationError):
            ExponentialDecay(1.0, decay=0.0)


class TestOptimizerValidation:
    def test_bad_momentum_raises(self):
        with pytest.raises(ConfigurationError):
            Momentum(0.1, momentum=1.0)

    def test_bad_adam_raises(self):
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta1=1.0)

    def test_registry(self):
        assert isinstance(get_optimizer("sgd", learning_rate=0.1), SGD)
        with pytest.raises(ConfigurationError):
            get_optimizer("lion")


def _blob_problem(n=120, seed=0):
    """Three well-separated Gaussian blobs as (1, 2, 2) 'images'."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[3, 0, 0, 0], [0, 3, 0, 0], [0, 0, 3, 0]], dtype=float
    )
    labels = rng.integers(0, 3, size=n)
    x = centers[labels] + rng.normal(0, 0.3, size=(n, 4))
    return x.reshape(n, 1, 2, 2), labels


class TestTrainer:
    def make_net(self, seed=1):
        return Network(
            [Flatten(), Dense(3, activation="softmax")],
            input_shape=(1, 2, 2),
            rng=seed,
        )

    def test_learns_separable_blobs(self):
        x, y = _blob_problem()
        trainer = Trainer(
            self.make_net(), loss="softmax_cross_entropy",
            optimizer=Adam(0.05), rng=0,
        )
        history = trainer.fit(x, y, epochs=20)
        assert history.final.train_accuracy > 0.95

    def test_mse_recipe_also_learns(self):
        x, y = _blob_problem(seed=3)
        net = Network(
            [Flatten(), Dense(3, activation="sigmoid")],
            input_shape=(1, 2, 2),
            rng=2,
        )
        trainer = Trainer(net, loss="mse", optimizer=SGD(0.5), rng=0)
        history = trainer.fit(x, y, epochs=40)
        assert history.final.train_accuracy > 0.9

    def test_validation_metrics_recorded(self):
        x, y = _blob_problem()
        trainer = Trainer(self.make_net(), loss="softmax_cross_entropy", rng=0)
        history = trainer.fit(x, y, epochs=2, validation=(x, y))
        assert history.final.val_loss is not None
        assert history.final.val_accuracy is not None

    def test_early_stopping_halts(self):
        x, y = _blob_problem()
        # Validation labels are shuffled noise: its loss cannot keep
        # improving, so patience must trigger well before 100 epochs.
        y_noise = np.random.default_rng(9).permutation(y)
        trainer = Trainer(
            self.make_net(), loss="softmax_cross_entropy",
            optimizer=Adam(0.05), rng=0,
        )
        history = trainer.fit(
            x, y, epochs=100, validation=(x, y_noise), early_stop_patience=2
        )
        assert len(history.epochs) < 100

    def test_early_stopping_requires_validation(self):
        x, y = _blob_problem()
        trainer = Trainer(self.make_net(), rng=0)
        with pytest.raises(ConfigurationError):
            trainer.fit(x, y, epochs=2, early_stop_patience=1)

    def test_mismatched_data_raises(self):
        trainer = Trainer(self.make_net(), rng=0)
        with pytest.raises(DataError):
            trainer.fit(np.zeros((4, 1, 2, 2)), np.zeros(3, dtype=int), epochs=1)

    def test_empty_data_raises(self):
        trainer = Trainer(self.make_net(), rng=0)
        with pytest.raises(DataError):
            trainer.fit(np.zeros((0, 1, 2, 2)), np.zeros(0, dtype=int), epochs=1)

    def test_evaluate(self):
        x, y = _blob_problem()
        trainer = Trainer(
            self.make_net(), loss="softmax_cross_entropy", optimizer=Adam(0.05), rng=0
        )
        trainer.fit(x, y, epochs=15)
        loss, acc = trainer.evaluate(x, y)
        assert acc > 0.9
        assert loss < 1.0

    def test_history_accessors(self):
        x, y = _blob_problem()
        trainer = Trainer(self.make_net(), rng=0)
        history = trainer.fit(x, y, epochs=3)
        assert len(history.losses()) == 3
        assert len(history.accuracies()) == 3

    def test_empty_history_raises(self):
        from repro.nn.trainer import TrainingHistory

        with pytest.raises(ConfigurationError):
            TrainingHistory().final
